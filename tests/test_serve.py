"""Serving-layer suite: worker concurrency, HTTP endpoints, admission.

Three layers under test, bottom up: :class:`EngineWorker` (the lock-
guarded single-consumer decode loop), admission control (shed / reject /
timeout semantics), and the HTTP front end (status codes, chunked
streaming, stats).  The load-level integrity story — zero lost or
duplicated requests under bursty arrivals — is exercised end-to-end by
``benchmarks/bench_serving.py --smoke`` via its own tier-1 test.
"""

import http.client
import json
import threading
import time

import pytest

from repro.core import TransformerConfig, TransformerLM
from repro.infer import GenerationEngine, SamplingParams
from repro.obs import FlightRecorder, Observability, SLOMonitor, SLOThresholds
from repro.train import faults
from repro.serve import (
    AdmissionPolicy,
    EngineWorker,
    InferenceServer,
    RejectError,
    ServeClient,
    ServeClientError,
    ShedError,
)


def tiny_model(**kwargs):
    cfg = TransformerConfig(vocab_size=11, max_seq_len=64, d_model=16,
                            num_heads=2, num_layers=2, **kwargs)
    return TransformerLM(cfg, rng=0)


class SlowModel:
    """decode_step with a fixed sleep: makes serving timing controllable."""

    def __init__(self, inner, delay_s):
        self._inner = inner
        self.delay_s = delay_s
        self.config = inner.config

    def decode_step(self, tokens, positions, states):
        time.sleep(self.delay_s)
        return self._inner.decode_step(tokens, positions, states)


@pytest.fixture(scope="module")
def model():
    return tiny_model()


def make_worker(model_, batch_size=2, policy=None, **engine_kwargs):
    engine_kwargs.setdefault("params", SamplingParams(greedy=True))
    engine = GenerationEngine(model_, batch_size=batch_size, **engine_kwargs)
    return EngineWorker(engine, policy=policy)


class TestEngineWorker:
    def test_blocking_roundtrip_matches_generate_fast(self, model):
        with make_worker(model) as worker:
            handle = worker.submit([1, 2, 3], 8)
            result = handle.wait(timeout=30)
        assert result.tokens == model.generate_fast([1, 2, 3], 8, greedy=True)
        assert result.finish_reason == "length"
        assert not handle.timed_out

    def test_streamed_tokens_match_final_completion(self, model):
        with make_worker(model) as worker:
            handle = worker.submit([4, 5], 6)
            streamed = list(handle.tokens())
            result = handle.wait(timeout=30)
        assert streamed == result.completion
        assert result.tokens == model.generate_fast([4, 5], 6, greedy=True)

    def test_submit_while_running_from_second_thread(self, model):
        """The server pattern: one thread streams while another submits."""
        with make_worker(model, batch_size=2) as worker:
            first = worker.submit([1], 20)
            second_result = {}

            def late_submit():
                # Interleaves with the decode loop mid-flight of `first`.
                handle = worker.submit([2, 3], 10)
                second_result["result"] = handle.wait(timeout=30)

            thread = threading.Thread(target=late_submit)
            thread.start()
            first_result = first.wait(timeout=30)
            thread.join(timeout=30)
        assert first_result.tokens == model.generate_fast([1], 20, greedy=True)
        assert second_result["result"].tokens == \
            model.generate_fast([2, 3], 10, greedy=True)

    def test_many_concurrent_submitters_no_loss_no_mixups(self, model):
        prompts = [[p] for p in range(1, 9)]
        refs = {tuple(p): model.generate_fast(p, 10, greedy=True)
                for p in prompts}
        outcomes = []
        lock = threading.Lock()
        with make_worker(model, batch_size=4,
                         policy=AdmissionPolicy(max_queue_depth=32)) as worker:
            def drive(prompt):
                result = worker.submit(prompt, 10).wait(timeout=60)
                with lock:
                    outcomes.append((prompt, result))

            threads = [threading.Thread(target=drive, args=(p,))
                       for p in prompts]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert len(outcomes) == len(prompts)
        ids = [r.request_id for _, r in outcomes]
        assert len(set(ids)) == len(ids)
        for prompt, result in outcomes:
            assert result.tokens == refs[tuple(prompt)]

    def test_zero_new_tokens_completes_inline(self, model):
        with make_worker(model) as worker:
            result = worker.submit([3, 4], 0).wait(timeout=5)
        assert result.tokens == [3, 4]
        assert result.finish_reason == "length"

    def test_invalid_requests_reject_without_engine_damage(self, model):
        with make_worker(model) as worker:
            with pytest.raises(RejectError):
                worker.submit([], 5)
            with pytest.raises(RejectError):
                worker.submit([1], -1)
            with pytest.raises(RejectError):
                worker.submit([1] * 60, 30)  # exceeds model window
            # engine still serves fine afterwards
            assert worker.submit([1], 4).wait(timeout=30).tokens == \
                model.generate_fast([1], 4, greedy=True)
            stats = worker.stats()
        assert stats["server"]["rejected"] == 3
        assert stats["server"]["accepted"] == 1

    def test_token_budget_rejected(self, model):
        policy = AdmissionPolicy(max_tokens_per_request=8)
        with make_worker(model, policy=policy) as worker:
            with pytest.raises(RejectError):
                worker.submit([1], 9)
            assert worker.submit([1], 8).wait(timeout=30) is not None

    def test_queue_cap_sheds(self, model):
        slow = SlowModel(model, 0.01)
        policy = AdmissionPolicy(max_queue_depth=0)
        with make_worker(slow, batch_size=1, policy=policy) as worker:
            first = worker.submit([1], 25)
            next(first.tokens())  # admitted: slot busy, queue empty
            with pytest.raises(ShedError):
                worker.submit([2], 5)
            stats = worker.stats()
            assert stats["server"]["shed"] == 1
            first.wait(timeout=60)

    def test_timeout_cancels_and_reclaims_slot(self, model):
        slow = SlowModel(model, 0.02)
        policy = AdmissionPolicy(max_queue_depth=4, request_timeout_s=0.15)
        with make_worker(slow, batch_size=1, policy=policy) as worker:
            handle = worker.submit([1, 2], 40)
            result = handle.wait(timeout=30)
            assert handle.timed_out
            assert result.finish_reason == "cancelled"
            assert len(result.tokens) < 2 + 40  # partial
            # slot is free again: a short request completes normally
            quick = worker.submit([3], 2).wait(timeout=30)
            assert quick.finish_reason == "length"
            stats = worker.stats()
        assert stats["active_slots"] == 0
        assert stats["server"]["timeouts"] == 1

    def test_close_cancels_pending_and_rejects_new(self, model):
        slow = SlowModel(model, 0.02)
        worker = make_worker(slow, batch_size=1).start()
        handle = worker.submit([1], 40)
        worker.close()
        assert handle.wait(timeout=5).finish_reason == "cancelled"
        with pytest.raises(RejectError) as excinfo:
            worker.submit([2], 5)
        assert excinfo.value.status == 503


def serve(model_, batch_size=2, policy=None, obs=None, slo=None, flight=None,
          **engine_kwargs):
    engine_kwargs.setdefault("params", SamplingParams(greedy=True))
    engine = GenerationEngine(model_, batch_size=batch_size,
                              obs=obs, **engine_kwargs)
    return InferenceServer(engine, policy=policy, obs=obs, slo=slo,
                           flight=flight)


def raw_submit(server, prompt, max_new_tokens, headers=None):
    """POST /v1/submit via raw http.client, returning response headers too."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        payload = json.dumps({"prompt": list(prompt),
                              "max_new_tokens": max_new_tokens}).encode()
        conn.request("POST", "/v1/submit", body=payload,
                     headers={"Content-Type": "application/json",
                              **(headers or {})})
        response = conn.getresponse()
        body = json.loads(response.read().decode())
        return response.status, dict(response.getheaders()), body
    finally:
        conn.close()


class TestHTTPServer:
    def test_healthz_and_404(self, model):
        with serve(model) as server:
            client = ServeClient(server.host, server.port)
            health = client.healthz()
            assert health["status"] == "ok"
            assert set(health["signals"]) == {
                "ttft_p99_s", "shed_rate", "error_rate", "queue_depth"}
            with pytest.raises(ServeClientError) as excinfo:
                client._request("GET", "/nope")
            assert excinfo.value.status == 404

    def test_batch1_greedy_bit_identical_to_generate_fast(self, model):
        with serve(model, batch_size=1) as server:
            client = ServeClient(server.host, server.port)
            for prompt in ([1, 2, 3], [9], [4, 5, 6, 7]):
                body = client.submit(prompt, 10)
                assert body["tokens"] == \
                    model.generate_fast(prompt, 10, greedy=True)
                assert body["completion"] == body["tokens"][len(prompt):]
                assert body["timing"]["ttft_s"] >= 0

    def test_streaming_ndjson_matches_blocking(self, model):
        with serve(model) as server:
            client = ServeClient(server.host, server.port)
            records = list(client.stream([2, 4], 7))
        assert "request_id" in records[0]
        tokens = [r["token"] for r in records if "token" in r]
        final = records[-1]
        assert final["done"] is True
        assert tokens == final["completion"]
        assert final["tokens"] == model.generate_fast([2, 4], 7, greedy=True)

    def test_stop_token_semantics_over_http(self, model):
        with serve(model, batch_size=1,
                   params=SamplingParams(greedy=True,
                                         stop_token=5)) as server:
            client = ServeClient(server.host, server.port)
            default = client.submit([1], 12)
            assert default["tokens"] == \
                model.generate_fast([1], 12, greedy=True, stop_token=5)
            # explicit null disables the engine-wide stop token
            overridden = client.submit([1], 12, stop_token=None)
            assert overridden["tokens"] == \
                model.generate_fast([1], 12, greedy=True)

    def test_bad_request_400(self, model):
        with serve(model) as server:
            client = ServeClient(server.host, server.port)
            for body in ({}, {"prompt": [1]}, {"max_new_tokens": 3},
                         {"prompt": [1], "max_new_tokens": "many"}):
                with pytest.raises(ServeClientError) as excinfo:
                    client._request("POST", "/v1/submit", body)
                assert excinfo.value.status == 400

    def test_queue_cap_returns_429_with_retry_after(self, model):
        slow = SlowModel(model, 0.01)
        policy = AdmissionPolicy(max_queue_depth=0, retry_after_s=0.5)
        with serve(slow, batch_size=1, policy=policy) as server:
            client = ServeClient(server.host, server.port)
            stream = client.stream([1, 2, 3], 30)
            next(stream)            # request_id line
            next(stream)            # first token: admitted, slot busy
            with pytest.raises(ServeClientError) as excinfo:
                client.submit([4], 5)
            assert excinfo.value.status == 429
            assert float(excinfo.value.headers["Retry-After"]) == 0.5
            for _ in stream:        # let the in-flight request finish
                pass
            assert client.stats()["server"]["shed"] == 1

    def test_timeout_returns_504_with_partial_result(self, model):
        slow = SlowModel(model, 0.02)
        policy = AdmissionPolicy(max_queue_depth=4, request_timeout_s=0.15)
        with serve(slow, batch_size=1, policy=policy) as server:
            client = ServeClient(server.host, server.port)
            with pytest.raises(ServeClientError) as excinfo:
                client.submit([1, 2, 3], 50)
            assert excinfo.value.status == 504
            assert excinfo.value.body["finish_reason"] == "cancelled"
            assert len(excinfo.value.body["tokens"]) >= 3
            # slot reclaimed: the next request is served
            assert client.submit([1], 2)["finish_reason"] == "length"

    def test_stats_midflight_and_after(self, model):
        slow = SlowModel(model, 0.01)
        with serve(slow, batch_size=2) as server:
            client = ServeClient(server.host, server.port)
            stream = client.stream([1, 2], 30)
            next(stream)
            next(stream)            # admitted and decoding
            mid = client.stats()
            assert mid["active_slots"] == 1
            assert mid["server"]["inflight"] == 1
            assert mid["server"]["accepted"] == 1
            for _ in stream:
                pass
            done = client.stats()
        assert done["active_slots"] == 0
        assert done["server"]["completed"] == 1
        assert done["requests_submitted"] == done["requests_completed"] == 1

    def test_concurrent_http_clients(self, model):
        prompts = [[p] for p in range(8)]
        refs = {tuple(p): model.generate_fast(p, 8, greedy=True)
                for p in prompts}
        results = {}
        lock = threading.Lock()
        with serve(model, batch_size=4,
                   policy=AdmissionPolicy(max_queue_depth=16)) as server:
            def drive(prompt):
                client = ServeClient(server.host, server.port)
                body = client.submit(prompt, 8)
                with lock:
                    results[tuple(prompt)] = body

            threads = [threading.Thread(target=drive, args=(p,))
                       for p in prompts]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            stats = server.stats()
        assert len(results) == len(prompts)
        for prompt, body in results.items():
            assert body["tokens"] == refs[prompt]
        ids = [body["request_id"] for body in results.values()]
        assert len(set(ids)) == len(ids)
        assert stats["server"]["accepted"] == stats["server"]["completed"] == 8

    def test_serving_metrics_and_events_surface(self, model):
        obs = Observability.standard()
        with serve(model, obs=obs) as server:
            client = ServeClient(server.host, server.port)
            client.submit([1, 2], 5)
        snapshot = obs.metrics.snapshot()
        assert snapshot["serve.accepted"]["value"] == 1
        assert snapshot["serve.completed"]["value"] == 1
        assert snapshot["engine.ttft_seconds"]["count"] == 1
        assert len(obs.events.of_type("request_submitted")) == 1
        assert len(obs.events.of_type("request_finished")) == 1


class TestTracePropagation:
    def test_traceparent_roundtrip_and_cross_thread_export(self, model):
        obs = Observability.standard()
        trace_id, caller_span = "ab" * 16, "cd" * 8
        with serve(model, obs=obs) as server:
            status, headers, _ = raw_submit(
                server, [1, 2], 5,
                headers={"traceparent": f"00-{trace_id}-{caller_span}-01"})
            assert status == 200
            assert headers["X-Trace-Id"] == trace_id
            assert headers["traceparent"].split("-")[1] == trace_id
            exported = ServeClient(server.host, server.port).trace(trace_id)
        assert exported["trace_id"] == trace_id
        events = exported["traceEvents"]
        assert events and all(
            e["args"]["trace_id"] == trace_id for e in events)
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        assert {"serve.request", "request.queue_wait",
                "request.prefill", "request.decode_step"} <= set(by_name)
        (root,) = by_name["serve.request"]
        # the handler's root span continues the remote caller's span
        assert root["args"]["parent_id"] == caller_span
        # engine-side phases are parented under the request's root span
        # even though they are recorded from the decode thread
        engine_spans = (by_name["request.queue_wait"]
                        + by_name["request.prefill"]
                        + by_name["request.decode_step"])
        for span in engine_spans:
            assert span["args"]["parent_id"] == root["args"]["span_id"]
        assert {span["tid"] for span in engine_spans} != {root["tid"]}

    def test_fresh_trace_minted_without_header(self, model):
        obs = Observability.standard()
        with serve(model, obs=obs) as server:
            _, first, _ = raw_submit(server, [1], 3)
            _, second, _ = raw_submit(server, [2], 3)
        assert len(first["X-Trace-Id"]) == 32
        assert int(first["X-Trace-Id"], 16) != 0
        assert first["X-Trace-Id"] != second["X-Trace-Id"]

    def test_malformed_traceparent_gets_fresh_trace(self, model):
        obs = Observability.standard()
        with serve(model, obs=obs) as server:
            for bad in ("nonsense", "00-zz-yy-01",
                        "00-" + "0" * 32 + "-" + "cd" * 8 + "-01"):
                status, headers, _ = raw_submit(
                    server, [1], 3, headers={"traceparent": bad})
                assert status == 200
                assert len(headers["X-Trace-Id"]) == 32

    def test_streaming_first_record_carries_trace_id(self, model):
        obs = Observability.standard()
        with serve(model, obs=obs) as server:
            client = ServeClient(server.host, server.port)
            records = list(client.stream([1, 2], 4))
        assert len(records[0]["trace_id"]) == 32

    def test_trace_ids_surface_in_request_events(self, model):
        obs = Observability.standard()
        trace_id = "ef" * 16
        with serve(model, obs=obs) as server:
            raw_submit(server, [1, 2], 3,
                       headers={"traceparent":
                                f"00-{trace_id}-{'cd' * 8}-01"})
        for name in ("request_submitted", "request_admitted",
                     "request_finished"):
            (event,) = obs.events.of_type(name)
            assert event["trace_id"] == trace_id


class TestObservabilityPlane:
    def test_metrics_endpoint_is_prometheus_parseable(self, model):
        from tests.test_obs_exposition import parse_exposition

        obs = Observability.standard()
        with serve(model, obs=obs) as server:
            client = ServeClient(server.host, server.port)
            client.submit([1, 2], 5)
            text = client.metrics()
        families = parse_exposition(text)
        assert families["serve_accepted_total"]["type"] == "counter"
        ((_, labels, value),) = families["serve_accepted_total"]["samples"]
        assert labels["job"] == "repro_serve" and value == "1"
        assert families["engine_ttft_seconds"]["type"] == "histogram"

    def test_metrics_endpoint_with_telemetry_disabled(self, model):
        with serve(model) as server:
            client = ServeClient(server.host, server.port)
            client.submit([1], 3)
            text = client.metrics()
        assert text.strip() == ""  # NullMetrics: empty but valid exposition

    def test_trace_endpoint_requires_id(self, model):
        with serve(model) as server:
            client = ServeClient(server.host, server.port)
            with pytest.raises(ServeClientError) as excinfo:
                client.trace("")
            assert excinfo.value.status == 400
            body = client.trace("deadbeef")
            assert body["traceEvents"] == []
            assert body["tracing_enabled"] is False

    def test_healthz_degraded_on_one_breach(self, model):
        slo = SLOMonitor(SLOThresholds(ttft_p99_s=0.0, min_requests=1))
        with serve(model, slo=slo) as server:
            client = ServeClient(server.host, server.port)
            client.submit([1, 2], 3)
            health = client.healthz()
        assert health["status"] == "degraded"
        assert health["breached"] == ["ttft_p99_s"]

    def test_healthz_503_when_failing(self, model):
        slo = SLOMonitor(SLOThresholds(ttft_p99_s=0.0, max_queue_depth=-1,
                                       min_requests=1))
        with serve(model, slo=slo) as server:
            client = ServeClient(server.host, server.port)
            client.submit([1, 2], 3)
            with pytest.raises(ServeClientError) as excinfo:
                client.healthz()
        assert excinfo.value.status == 503
        assert excinfo.value.body["status"] == "failing"

    def test_stats_carry_slo_verdict_and_metrics(self, model):
        obs = Observability.standard()
        with serve(model, obs=obs) as server:
            client = ServeClient(server.host, server.port)
            client.submit([1, 2], 4)
            stats = client.stats()
        assert stats["slo"]["status"] == "ok"
        assert "ttft_p99_s" in stats["slo"]["signals"]
        assert stats["metrics"]["serve.completed"]["value"] == 1

    def test_shed_and_timeout_feed_slo_window(self, model):
        slow = SlowModel(model, 0.01)
        policy = AdmissionPolicy(max_queue_depth=0, retry_after_s=0.1)
        slo = SLOMonitor(SLOThresholds(max_shed_rate=0.0, min_requests=1))
        with serve(slow, batch_size=1, policy=policy, slo=slo) as server:
            client = ServeClient(server.host, server.port)
            stream = client.stream([1, 2, 3], 20)
            next(stream)
            next(stream)            # slot busy now
            with pytest.raises(ServeClientError):
                client.submit([4], 5)       # shed -> 429
            health_body = client.healthz()
            for _ in stream:
                pass
        assert health_body["status"] == "degraded"
        assert health_body["breached"] == ["shed_rate"]
        assert health_body["signals"]["shed_rate"]["value"] > 0


class TestFlightRecorderOverHTTP:
    def test_crash_mid_stream_dumps_blackbox(self, model, tmp_path):
        path = tmp_path / "flightrecord.json"
        obs = Observability.standard()
        flight = FlightRecorder(path=path, capacity=256)
        slow = SlowModel(model, 0.005)
        with serve(slow, obs=obs, flight=flight) as server:
            client = ServeClient(server.host, server.port)
            with faults.inject("serve.step", faults.SimulatedCrash, skip=3):
                records = list(client.stream([1, 2], 30))
            final = records[-1]
            assert final["finish_reason"] == "cancelled"
            # the worker is down: health reports failing, new work is shed
            with pytest.raises(ServeClientError) as excinfo:
                client.healthz()
            assert excinfo.value.status == 503
            assert excinfo.value.body["crashed"] is True
        assert path.exists()
        blackbox = json.loads(path.read_text())
        assert blackbox["reason"] == "crash"
        assert "SimulatedCrash" in blackbox["error"]
        names = [e["event"] for e in blackbox["events"]]
        assert "server_crash" in names
        assert "request_submitted" in names

    def test_blackbox_contains_inflight_request_trace(self, model, tmp_path):
        path = tmp_path / "flightrecord.json"
        obs = Observability.standard()
        flight = FlightRecorder(path=path, capacity=256)
        slow = SlowModel(model, 0.005)
        trace_id = "ba" * 16
        with serve(slow, obs=obs, flight=flight) as server:
            with faults.inject("serve.step", faults.SimulatedCrash, skip=4):
                status, headers, body = raw_submit(
                    server, [1, 2, 3], 30,
                    headers={"traceparent":
                             f"00-{trace_id}-{'cd' * 8}-01"})
        assert body["finish_reason"] == "cancelled"
        blackbox = json.loads(path.read_text())
        event_traces = {e.get("trace_id") for e in blackbox["events"]}
        assert trace_id in event_traces
        span_names = {s["name"] for s in blackbox["spans"]}
        assert "request.prefill" in span_names
        assert "request.decode_step" in span_names


class TestAdmissionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionPolicy(request_timeout_s=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_tokens_per_request=-1)

    def test_free_slots_admit_even_at_cap_zero(self):
        policy = AdmissionPolicy(max_queue_depth=0)
        policy.check(queue_depth=0, free_slots=2, max_new_tokens=4)  # ok
        with pytest.raises(ShedError):
            policy.check(queue_depth=0, free_slots=0, max_new_tokens=4)

    def test_waiting_counts_exclude_immediately_admitted(self):
        policy = AdmissionPolicy(max_queue_depth=2)
        # queue of 3 but 2 free slots -> only 1 actually waits
        policy.check(queue_depth=3, free_slots=2, max_new_tokens=4)
        with pytest.raises(ShedError):
            policy.check(queue_depth=4, free_slots=2, max_new_tokens=4)

    def test_token_budget(self):
        policy = AdmissionPolicy(max_tokens_per_request=16)
        policy.check(queue_depth=0, free_slots=1, max_new_tokens=16)
        with pytest.raises(RejectError):
            policy.check(queue_depth=0, free_slots=1, max_new_tokens=17)

    def test_to_dict_roundtrips_knobs(self):
        policy = AdmissionPolicy(max_queue_depth=3, max_tokens_per_request=9,
                                 request_timeout_s=1.5, retry_after_s=0.2)
        assert policy.to_dict() == {
            "max_queue_depth": 3, "max_tokens_per_request": 9,
            "request_timeout_s": 1.5, "retry_after_s": 0.2,
        }


class TestPromptLimitParity:
    """PR 8 satellite: one length check for both submit paths.

    ``prompt + max_new_tokens`` greater than the cache window must
    produce the *same* structured 400 — with a machine-readable
    ``limits`` dict — whether the client blocks or streams, and the
    exact boundary (sum == window) must be accepted on both.
    """

    def test_boundary_accepted_on_both_paths(self, model):
        window = model.config.max_seq_len
        with serve(model, batch_size=1) as server:
            client = ServeClient(server.host, server.port)
            blocking = client.submit([1] * (window - 4), 4)
            assert blocking["finish_reason"] in ("length", "stop_token")
            records = list(client.stream([1] * (window - 4), 4))
            assert records[-1]["done"] is True
            # prompt exactly at the window with zero budget is also legal
            assert client.submit([1] * window, 0)["finish_reason"] == "length"

    def test_over_window_identical_400_on_both_paths(self, model):
        window = model.config.max_seq_len
        with serve(model, batch_size=1) as server:
            client = ServeClient(server.host, server.port)
            with pytest.raises(ServeClientError) as blocking:
                client.submit([1] * window, 1)
            with pytest.raises(ServeClientError) as streaming:
                list(client.stream([1] * window, 1))
            assert blocking.value.status == streaming.value.status == 400
            assert blocking.value.body == streaming.value.body
            limits = blocking.value.body["limits"]
            assert limits["max_seq_len"] == window
            assert limits["prompt_len"] == window
            assert limits["max_new_tokens"] == 1

    def test_page_pool_limit_surfaces_in_400(self, model):
        with serve(model, batch_size=1, kv_page_size=4,
                   kv_num_pages=4) as server:
            client = ServeClient(server.host, server.port)
            with pytest.raises(ServeClientError) as excinfo:
                client.submit([1, 2, 3], 20)     # 23 tokens > 16 positions
            assert excinfo.value.status == 400
            assert excinfo.value.body["limits"]["kv_num_pages"] == 4

    def test_kv_stats_flow_through_http(self, model):
        """/v1/stats carries the paged-pool + prefix-cache snapshot."""
        system = [1, 2, 3, 4, 5, 6, 7, 8]
        with serve(model, batch_size=1, kv_page_size=4) as server:
            client = ServeClient(server.host, server.port)
            client.submit(system + [9], 4)
            client.submit(system + [10], 4)
            kv = client.stats()["kv"]
            assert kv["backend"] == "paged"
            assert kv["pages_used"] >= 2
            assert kv["prefix_cache"]["hits"] == 1
            assert kv["prefix_cache"]["misses"] == 1

    def test_kv_page_gauges_on_metrics_endpoint(self, model):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs import Observability
        obs = Observability(metrics=MetricsRegistry())
        with serve(model, batch_size=1, obs=obs) as server:
            client = ServeClient(server.host, server.port)
            client.submit([1, 2, 3], 4)
            text = client.metrics()
            assert "engine_kv_pages_used" in text
            assert "engine_kv_pages_free" in text
            assert "prefix_cache_miss" in text


class TestSamplingOverHTTP:
    """PR 9: the ``"sampling"`` body object on both submit paths.

    Per-request params must decode exactly as the in-process engine
    would, the resolved params are echoed back (blocking result and
    first streaming record), and an invalid object produces the same
    structured 400 — with a ``params`` dict — whether the client blocks
    or streams, mirroring the PR 8 ``limits`` parity contract.
    """

    def test_blocking_sampling_decodes_and_echoes(self, model):
        with serve(model, batch_size=1) as server:
            client = ServeClient(server.host, server.port)
            result = client.submit([1, 2, 3], 8,
                                   sampling={"greedy": True,
                                             "stop_token": 5})
            assert result["tokens"] == model.generate_fast(
                [1, 2, 3], 8, greedy=True, stop_token=5)
            echo = result["sampling"]
            assert echo["greedy"] is True and echo["stop_token"] == 5

    def test_sampling_params_object_accepted_by_client(self, model):
        with serve(model, batch_size=1) as server:
            client = ServeClient(server.host, server.port)
            result = client.submit(
                [2, 4], 6, sampling=SamplingParams(temperature=0.8,
                                                   top_k=5, seed=3))
            assert result["sampling"]["seed"] == 3
            assert result["sampling"]["top_k"] == 5

    def test_streaming_first_record_echoes_sampling(self, model):
        with serve(model, batch_size=1) as server:
            client = ServeClient(server.host, server.port)
            records = list(client.stream([1], 5,
                                         sampling={"greedy": True}))
            assert records[0]["sampling"]["greedy"] is True
            tokens = [r["token"] for r in records if "token" in r]
            assert records[-1]["done"] is True
            assert records[-1]["sampling"]["greedy"] is True
            ref = model.generate_fast([1], 5, greedy=True)
            assert tokens == ref[1:]

    def test_seeded_requests_reproduce_over_http(self, model):
        with serve(model, batch_size=2) as server:
            client = ServeClient(server.host, server.port)
            sampling = {"temperature": 1.2, "seed": 42}
            first = client.submit([1, 2], 8, sampling=sampling)
            second = client.submit([1, 2], 8, sampling=sampling)
            assert first["tokens"] == second["tokens"]

    def test_invalid_sampling_identical_400_on_both_paths(self, model):
        with serve(model, batch_size=1) as server:
            client = ServeClient(server.host, server.port)
            bad = {"top_p": 2.0}
            with pytest.raises(ServeClientError) as blocking:
                client.submit([1], 4, sampling=bad)
            with pytest.raises(ServeClientError) as streaming:
                list(client.stream([1], 4, sampling=bad))
            assert blocking.value.status == streaming.value.status == 400
            assert blocking.value.body == streaming.value.body
            params = blocking.value.body["params"]
            assert params["field"] == "top_p"
            assert params["value"] == 2.0
            assert "top_p" in params["constraint"]

    def test_unknown_sampling_key_rejected(self, model):
        with serve(model, batch_size=1) as server:
            client = ServeClient(server.host, server.port)
            with pytest.raises(ServeClientError) as excinfo:
                client.submit([1], 4, sampling={"temprature": 0.5})
            assert excinfo.value.status == 400
            assert excinfo.value.body["params"]["field"] == "temprature"

    def test_bare_body_keeps_engine_default(self, model):
        # pre-PR-9 clients sending no "sampling" object see no change
        with serve(model, batch_size=1) as server:
            client = ServeClient(server.host, server.port)
            result = client.submit([1, 2, 3], 6)
            assert result["tokens"] == model.generate_fast(
                [1, 2, 3], 6, greedy=True)
            assert result["sampling"]["greedy"] is True


class TestSpeculativeOverHTTP:
    def test_speculative_engine_serves_identical_tokens(self, model):
        """A speculative engine behind the HTTP stack returns the same
        greedy tokens and exposes acceptance counters on /v1/stats."""
        import numpy as np

        from repro.infer import SpeculativeConfig
        from repro.lm import LanguageModelDraft, NGramLM
        from repro.obs.metrics import MetricsRegistry

        prompts = [[1, 2, 3], [4, 5]]
        refs = [model.generate_fast(p, 12, greedy=True) for p in prompts]
        ngram = NGramLM(vocab_size=model.config.vocab_size, order=4,
                        add_k=0.01)
        for seq in refs:
            ngram.fit(np.asarray(seq, dtype=np.int64))
        spec = SpeculativeConfig(draft=LanguageModelDraft(ngram), k=4)
        obs = Observability(metrics=MetricsRegistry())
        with serve(model, batch_size=2, speculative=spec,
                   obs=obs) as server:
            client = ServeClient(server.host, server.port)
            for prompt, ref in zip(prompts, refs):
                assert client.submit(prompt, 12)["tokens"] == ref
            stats = client.stats()["spec"]
            assert stats["proposed"] > 0
            assert stats["accepted"] > 0
            assert stats["accepted_tokens_per_step"] > 0
            text = client.metrics()
            assert "engine_spec_accepted" in text
            assert "engine_spec_accepted_tokens_per_step" in text
