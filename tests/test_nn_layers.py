"""Unit tests for nn layers, module mechanics, and initializers."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import (
    MLP,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Sequential,
    get_activation,
    init,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestLinear:
    def test_shapes_and_bias(self):
        layer = Linear(4, 7, _rng())
        out = layer(Tensor(np.zeros((3, 4))))
        assert out.shape == (3, 7)
        assert np.allclose(out.data, 0.0)  # zero input -> bias (zero-init)

    def test_no_bias(self):
        layer = Linear(4, 7, _rng(), bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow_to_weight_and_bias(self):
        layer = Linear(3, 2, _rng())
        x = Tensor(_rng(1).normal(size=(5, 3)), requires_grad=True)
        layer(x).square().sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        assert x.grad is not None

    def test_init_variance_scales_as_one_over_fan_in(self):
        big = Linear(1000, 400, _rng())
        assert big.weight.data.var() == pytest.approx(1.0 / 1000, rel=0.15)

    def test_batched_3d_input(self):
        layer = Linear(4, 2, _rng())
        out = layer(Tensor(np.zeros((2, 5, 4))))
        assert out.shape == (2, 5, 2)


class TestEmbedding:
    def test_lookup_matches_table(self):
        emb = Embedding(10, 4, _rng())
        ids = np.array([1, 3, 1])
        out = emb(ids)
        assert np.array_equal(out.data, emb.weight.data[ids])

    def test_gradient_accumulates_for_repeated_ids(self):
        emb = Embedding(5, 3, _rng())
        out = emb(np.array([2, 2, 2]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[2], 3.0)
        assert np.allclose(emb.weight.grad[0], 0.0)

    def test_out_of_range_raises(self):
        emb = Embedding(5, 3, _rng())
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_2d_ids(self):
        emb = Embedding(5, 3, _rng())
        assert emb(np.zeros((2, 4), dtype=int)).shape == (2, 4, 3)


class TestLayerNormModule:
    def test_parameters_registered(self):
        ln = LayerNorm(6)
        names = dict(ln.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_output_normalised(self):
        ln = LayerNorm(8)
        x = Tensor(_rng().normal(size=(4, 8)) * 10 + 3)
        y = ln(x).data
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-8)


class TestDropoutModule:
    def test_respects_training_flag(self):
        d = Dropout(0.9, _rng())
        x = Tensor(np.ones((50, 50)))
        d.eval()
        assert np.array_equal(d(x).data, x.data)
        d.train()
        assert (d(x).data == 0).mean() > 0.5


class TestSequentialAndMLP:
    def test_sequential_applies_in_order(self):
        rng = _rng()
        seq = Sequential(Linear(3, 5, rng), LayerNorm(5), Linear(5, 2, rng))
        out = seq(Tensor(np.zeros((4, 3))))
        assert out.shape == (4, 2)
        assert len(seq) == 3
        assert len(list(iter(seq))) == 3

    def test_mlp_universal_approximation_smoke(self):
        """An MLP can fit a tiny nonlinear function (sanity, not proof)."""
        from repro.nn import Adam

        rng = _rng(0)
        mlp = MLP([1, 32, 1], rng, activation="tanh")
        xs = np.linspace(-2, 2, 64)[:, None]
        ys = np.sin(xs * 2)
        opt = Adam(mlp.parameters(), lr=1e-2)
        for _ in range(300):
            mlp.zero_grad()
            loss = (mlp(Tensor(xs)) - Tensor(ys)).square().mean()
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.05

    def test_mlp_needs_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4], _rng())

    def test_mlp_gradients(self):
        mlp = MLP([3, 8, 2], _rng(), activation="tanh")
        x = Tensor(_rng(1).normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda x: mlp(x).square().sum(), [x], atol=1e-5)

    def test_unknown_activation_raises(self):
        with pytest.raises(KeyError):
            get_activation("swish9000")

    def test_square_activation(self):
        act = get_activation("square")
        assert np.array_equal(act(Tensor([3.0])).data, [9.0])


class TestModuleMechanics:
    def test_parameter_discovery_in_lists(self):
        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.layers = [Linear(2, 2, _rng()), Linear(2, 2, _rng(1))]

        h = Holder()
        assert len(h.parameters()) == 4
        names = [n for n, _ in h.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names

    def test_num_parameters(self):
        layer = Linear(3, 4, _rng())
        assert layer.num_parameters() == 3 * 4 + 4

    def test_state_dict_roundtrip(self):
        a = MLP([3, 5, 2], _rng(0))
        b = MLP([3, 5, 2], _rng(99))
        assert not np.allclose(a.linears[0].weight.data, b.linears[0].weight.data)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.linears[0].weight.data, b.linears[0].weight.data)

    def test_state_dict_mismatch_raises(self):
        a = MLP([3, 5, 2], _rng())
        state = a.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        a = MLP([3, 5, 2], _rng())
        state = a.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_state_dict_unexpected_key_raises_with_both_sides(self):
        a = MLP([3, 5, 2], _rng())
        state = a.state_dict()
        first = next(iter(state))
        state["zzz.rogue"] = state.pop(first)
        with pytest.raises(KeyError) as exc:
            a.load_state_dict(state)
        # The error names both the missing and the unexpected keys.
        assert first in str(exc.value)
        assert "zzz.rogue" in str(exc.value)

    def test_state_dict_non_strict_loads_intersection(self):
        a = MLP([3, 5, 2], _rng(0))
        b = MLP([3, 5, 2], _rng(99))
        state = a.state_dict()
        dropped = next(iter(state))
        kept_before = b.state_dict()[dropped].copy()
        state.pop(dropped)
        b.load_state_dict(state, strict=False)
        # Missing entry untouched, everything else overwritten.
        assert np.array_equal(b.state_dict()[dropped], kept_before)
        other = next(k for k in a.state_dict() if k != dropped)
        assert np.array_equal(b.state_dict()[other], a.state_dict()[other])

    def test_train_eval_propagates(self):
        seq = Sequential(Dropout(0.5, _rng()), Dropout(0.5, _rng(1)))
        seq.eval()
        assert all(not m.training for m in seq.layers)
        seq.train()
        assert all(m.training for m in seq.layers)

    def test_zero_grad_clears_all(self):
        mlp = MLP([2, 3, 2], _rng())
        x = Tensor(np.ones((1, 2)))
        mlp(x).sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestInitializers:
    def test_scaled_normal_std(self):
        w = init.scaled_normal(_rng(), (2000, 100))
        assert w.std() == pytest.approx(1 / np.sqrt(2000), rel=0.1)

    def test_xavier_bounds(self):
        w = init.xavier_uniform(_rng(), (50, 50))
        bound = np.sqrt(6 / 100)
        assert np.abs(w).max() <= bound

    def test_he_normal_std(self):
        w = init.he_normal(_rng(), (2000, 50))
        assert w.std() == pytest.approx(np.sqrt(2 / 2000), rel=0.1)

    def test_zeros_ones(self):
        assert np.array_equal(init.zeros((2, 2)), np.zeros((2, 2)))
        assert np.array_equal(init.ones((3,)), np.ones(3))
