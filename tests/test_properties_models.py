"""Property-based tests across models and grammar machinery."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TransformerConfig, TransformerLM
from repro.data import Vocabulary
from repro.grammar import PCFG, inside_logprob, to_cnf, viterbi_parse
from repro.lm import InterpolatedNGramLM, NGramLM, UnigramLM


# ---------------------------------------------------------------------------
# Language models: every next-token distribution must be a distribution.
# ---------------------------------------------------------------------------

_streams = st.lists(st.integers(min_value=0, max_value=4), min_size=10,
                    max_size=60)


@settings(max_examples=25, deadline=None)
@given(_streams, st.integers(min_value=1, max_value=3))
def test_ngram_conditionals_are_distributions(stream, order):
    lm = NGramLM(5, order=order, add_k=0.5).fit(np.array(stream))
    for context in ([], [0], [4, 2], stream[:3]):
        probs = np.exp(lm.next_token_logprobs(np.array(context, dtype=np.int64)))
        assert probs.shape == (5,)
        assert np.isclose(probs.sum(), 1.0)
        assert (probs >= 0).all()


@settings(max_examples=25, deadline=None)
@given(_streams)
def test_unigram_perplexity_bounded_by_vocab(stream):
    lm = UnigramLM(5, add_k=1.0).fit(np.array(stream))
    ppl = lm.perplexity(np.array(stream))
    assert 1.0 <= ppl <= 5.0 + 1e-9


@settings(max_examples=20, deadline=None)
@given(_streams)
def test_interpolated_never_assigns_zero(stream):
    lm = InterpolatedNGramLM(5, order=3).fit(np.array(stream))
    logprobs = lm.next_token_logprobs(np.array(stream[:2], dtype=np.int64))
    assert np.isfinite(logprobs).all()


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_sequence_logprob_additive_under_concatenation(seed):
    """For a unigram model, logP(xy) = logP(x) + logP(y)."""
    rng = np.random.default_rng(seed)
    stream = rng.integers(0, 4, size=50)
    lm = UnigramLM(4).fit(stream)
    x, y = stream[:10], stream[10:20]
    joint = lm.sequence_logprob(np.concatenate([x, y]))
    assert joint == pytest.approx(lm.sequence_logprob(x) + lm.sequence_logprob(y))


# ---------------------------------------------------------------------------
# Transformer invariants
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000),
       st.integers(min_value=2, max_value=10))
def test_transformer_logits_finite_and_causal(seed, length):
    cfg = TransformerConfig(vocab_size=6, max_seq_len=12, d_model=8,
                            num_heads=2, num_layers=1)
    model = TransformerLM(cfg, rng=0)
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 6, size=(1, length))
    from repro.autograd import no_grad

    with no_grad():
        base = model.forward(x).data
    assert np.isfinite(base).all()
    # perturb the final token: earlier logits must not move
    x2 = x.copy()
    x2[0, -1] = (x2[0, -1] + 1) % 6
    with no_grad():
        perturbed = model.forward(x2).data
    assert np.allclose(base[0, :-1], perturbed[0, :-1])


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_generate_respects_vocab(seed):
    cfg = TransformerConfig(vocab_size=6, max_seq_len=12, d_model=8,
                            num_heads=2, num_layers=1)
    model = TransformerLM(cfg, rng=0)
    out = model.generate([1, 2], 8, rng=np.random.default_rng(seed))
    assert len(out) == 10
    assert all(0 <= t < 6 for t in out)


# ---------------------------------------------------------------------------
# Grammar invariants
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_sampled_sentences_are_recognized_with_consistent_probability(seed):
    """Any sampled sentence must (a) be in the language, (b) have inside
    probability >= its own derivation's probability."""
    grammar = PCFG.from_text(
        "S -> a S b [0.4]\nS -> a b [0.6]"
    )
    cnf = to_cnf(grammar)
    rng = np.random.default_rng(seed)
    tree = grammar.sample_tree(rng, max_depth=30)
    sentence = tree.leaves()
    total = inside_logprob(cnf, sentence)
    derivation = grammar.tree_logprob(tree)
    assert total > -math.inf
    assert total >= derivation - 1e-9


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_viterbi_logprob_never_exceeds_inside(seed):
    grammar = to_cnf(PCFG.from_text(
        "S -> A A [0.5]\nS -> A B [0.5]\nA -> a [1.0]\nB -> a [0.5]\nB -> b [0.5]"
    ))
    rng = np.random.default_rng(seed)
    tokens = [("a", "b")[i] for i in rng.integers(0, 2, size=2)]
    total = inside_logprob(grammar, tokens)
    parse = viterbi_parse(grammar, tokens)
    if parse is None:
        assert total == -math.inf
    else:
        assert parse.logprob <= total + 1e-9


# ---------------------------------------------------------------------------
# Vocabulary round-trips
# ---------------------------------------------------------------------------

_token_lists = st.lists(
    st.text(alphabet="abcdefg", min_size=1, max_size=4),
    min_size=1, max_size=20, unique=True,
)


@settings(max_examples=30, deadline=None)
@given(_token_lists)
def test_vocabulary_roundtrip(tokens):
    vocab = Vocabulary(tokens)
    ids = vocab.encode(tokens)
    assert vocab.decode(ids) == tokens
    assert sorted(set(ids)) == list(range(len(tokens)))
