"""Unit tests for optimizers, gradient clipping, and LR schedules."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    SGD,
    Adam,
    AdamW,
    Constant,
    StepDecay,
    WarmupCosine,
    WarmupLinear,
    clip_grad_norm,
)


def _quadratic_param(value=5.0):
    return Tensor(np.array([value]), requires_grad=True)


def _minimise(optimizer, param, steps=200):
    for _ in range(steps):
        param.zero_grad()
        (param * param).sum().backward()
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_matches_eq16_update(self):
        p = _quadratic_param(3.0)
        opt = SGD([p], lr=0.1)
        p.zero_grad()
        (p * p).sum().backward()  # grad = 6
        opt.step()
        assert p.data[0] == pytest.approx(3.0 - 0.1 * 6.0)

    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        assert abs(_minimise(SGD([p], lr=0.1), p)) < 1e-4

    def test_momentum_accelerates(self):
        p1, p2 = _quadratic_param(), _quadratic_param()
        plain = SGD([p1], lr=0.01)
        momentum = SGD([p2], lr=0.01, momentum=0.9)
        v_plain = abs(_minimise(plain, p1, steps=50))
        v_mom = abs(_minimise(momentum, p2, steps=50))
        assert v_mom < v_plain

    def test_weight_decay_shrinks_params_without_gradient_signal(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_skips_params_with_no_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        SGD([p], lr=0.1).step()  # no grad set; should not crash or move
        assert p.data[0] == 1.0

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        assert abs(_minimise(Adam([p], lr=0.1), p, steps=300)) < 1e-3

    def test_first_step_size_is_lr(self):
        """With bias correction, the first Adam step is ~lr * sign(grad)."""
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = Adam([p], lr=0.5)
        p.grad = np.array([3.0])
        opt.step()
        assert p.data[0] == pytest.approx(10.0 - 0.5, rel=1e-4)

    def test_adamw_decay_is_decoupled(self):
        """AdamW's decay scales with lr*wd*param, independent of grad size."""
        p = Tensor(np.array([100.0]), requires_grad=True)
        opt = AdamW([p], lr=0.1, weight_decay=0.1)
        p.grad = np.array([1e-12])  # negligible gradient
        opt.step()
        # movement should be dominated by the decay term: lr*wd*100 = 1.0
        assert p.data[0] == pytest.approx(99.0, abs=0.2)

    def test_adam_coupled_decay_differs_from_adamw(self):
        """Coupled L2 is normalised away by Adam's denominator; AdamW is not."""
        pa = Tensor(np.array([100.0]), requires_grad=True)
        pw = Tensor(np.array([100.0]), requires_grad=True)
        adam, adamw = Adam([pa], lr=0.1, weight_decay=0.1), AdamW([pw], lr=0.1, weight_decay=0.1)
        for opt, p in ((adam, pa), (adamw, pw)):
            p.grad = np.array([0.0])
            opt.step()
        assert pa.data[0] != pytest.approx(pw.data[0])


class TestOptimizerStateDict:
    def _stepped(self, make_opt, steps=3):
        p = _quadratic_param()
        opt = make_opt([p])
        _minimise(opt, p, steps=steps)
        return p, opt

    @pytest.mark.parametrize("make_opt", [
        lambda ps: SGD(ps, lr=0.1, momentum=0.9, weight_decay=0.01),
        lambda ps: Adam(ps, lr=0.1),
        lambda ps: AdamW(ps, lr=0.1, weight_decay=0.05),
    ])
    def test_round_trip_preserves_trajectory(self, make_opt):
        """Fresh optimizer + restored state continues exactly like the original."""
        p1, opt1 = self._stepped(make_opt)
        p2 = Tensor(p1.data.copy(), requires_grad=True)
        opt2 = make_opt([p2])
        opt2.load_state_dict(opt1.state_dict())
        for p, opt in ((p1, opt1), (p2, opt2)):
            p.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.array_equal(p1.data, p2.data)

    def test_state_dict_is_a_copy(self):
        _, opt = self._stepped(lambda ps: Adam(ps, lr=0.1))
        state = opt.state_dict()
        state["m"][0][:] = 123.0
        assert not np.array_equal(opt._m[0], state["m"][0])

    def test_adam_state_contents(self):
        _, opt = self._stepped(lambda ps: Adam(ps, lr=0.1), steps=4)
        state = opt.state_dict()
        assert state["kind"] == "Adam"
        assert state["step_count"] == 4
        assert state["betas"] == (0.9, 0.999)
        assert len(state["m"]) == len(state["v"]) == 1

    def test_kind_mismatch_raises(self):
        _, adam = self._stepped(lambda ps: Adam(ps, lr=0.1))
        _, adamw = self._stepped(lambda ps: AdamW(ps, lr=0.1))
        with pytest.raises(ValueError, match="Adam"):
            adamw.load_state_dict(adam.state_dict())
        # strict=False skips the kind check for state-compatible kinds.
        adamw.load_state_dict(adam.state_dict(), strict=False)
        assert adamw._step_count == adam._step_count

    def test_buffer_shape_mismatch_raises(self):
        _, opt = self._stepped(lambda ps: Adam(ps, lr=0.1))
        state = opt.state_dict()
        state["m"] = [np.zeros((7, 7))]
        with pytest.raises(ValueError, match="shape"):
            opt.load_state_dict(state)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Tensor(np.zeros(3), requires_grad=True)
        p.grad = np.array([0.3, 0.0, 0.4])  # norm 0.5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        assert np.allclose(p.grad, [0.3, 0.0, 0.4])

    def test_clips_to_max_norm(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        p.grad = np.array([3.0, 4.0])  # norm 5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_global_norm_across_params(self):
        p1 = Tensor(np.zeros(1), requires_grad=True)
        p2 = Tensor(np.zeros(1), requires_grad=True)
        p1.grad, p2.grad = np.array([3.0]), np.array([4.0])
        clip_grad_norm([p1, p2], max_norm=1.0)
        total = np.sqrt(p1.grad[0] ** 2 + p2.grad[0] ** 2)
        assert total == pytest.approx(1.0)


class TestSchedules:
    def test_constant(self):
        s = Constant(0.3)
        assert s.lr_at(0) == s.lr_at(1000) == 0.3

    def test_warmup_cosine_shape(self):
        s = WarmupCosine(peak_lr=1.0, warmup_steps=10, total_steps=100)
        assert s.lr_at(0) < s.lr_at(5) < s.lr_at(9)
        assert s.lr_at(9) == pytest.approx(1.0)
        assert s.lr_at(55) < 1.0
        assert s.lr_at(99) == pytest.approx(0.0, abs=1e-3)

    def test_warmup_cosine_final_lr_floor(self):
        s = WarmupCosine(peak_lr=1.0, warmup_steps=5, total_steps=50, final_lr=0.1)
        assert s.lr_at(49) == pytest.approx(0.1, abs=5e-3)
        assert s.lr_at(50) == pytest.approx(0.1)

    def test_warmup_linear(self):
        s = WarmupLinear(peak_lr=2.0, warmup_steps=4, total_steps=20)
        assert s.lr_at(3) == pytest.approx(2.0)
        assert s.lr_at(20) == pytest.approx(0.0)

    def test_step_decay(self):
        s = StepDecay(base_lr=1.0, step_size=10, gamma=0.5)
        assert s.lr_at(0) == 1.0
        assert s.lr_at(10) == 0.5
        assert s.lr_at(25) == 0.25

    def test_apply_mutates_optimizer(self):
        p = _quadratic_param()
        opt = SGD([p], lr=1.0)
        Constant(0.05).apply(opt, step=3)
        assert opt.lr == 0.05

    def test_invalid_schedules_raise(self):
        with pytest.raises(ValueError):
            WarmupCosine(1.0, warmup_steps=10, total_steps=10)
        with pytest.raises(ValueError):
            WarmupLinear(1.0, warmup_steps=10, total_steps=5)
        with pytest.raises(ValueError):
            StepDecay(1.0, step_size=0)
