"""The dtype policy (ISSUE 10): float32 compute as an opt-in, float64 law.

What must hold, layer by layer:

- **Policy resolution** — explicit argument > ``TransformerConfig(dtype=)``
  scope > ``dtype_scope`` context > process default (float64, the seed
  behaviour).  Unsupported dtypes fail loudly at the policy boundary.
- **Tensor semantics** — float ndarrays keep their dtype (and their
  buffer: no silent copy); non-float inputs cast to the policy default;
  Python-scalar operands follow the tensor's dtype instead of upcasting
  the graph (the NEP 50 hazard).
- **End-to-end float32** — a ``dtype="float32"`` model holds float32
  parameters, produces float32 activations/gradients, and draws the
  *identical RNG stream* as its float64 twin (initializers sample in
  float64 and cast), so the two models are the same numbers rounded.
- **KV plumbing** — both cache backends resolve their pool dtype through
  :func:`repro.infer.kv_cache.kv_value_dtype`; a float32 model's pool
  holds exactly half the bytes; index arrays stay int64.
- **Checkpoints** — round-trips preserve dtype; a strict load of
  mismatched-dtype arrays is a loud :class:`CheckpointError`, never a
  silent cast (``strict=False`` keeps the forgiving cast).
- **Pinned float64** — gradcheck refuses non-float64 inputs; sampling
  upcasts logits on entry so RNG consumption is dtype-independent.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.gradcheck import numerical_gradient
from repro.core import TransformerConfig, TransformerLM
from repro.core.attention import causal_mask
from repro.dtypes import (default_dtype, dtype_scope, resolve_dtype,
                          set_default_dtype)
from repro.infer import GenerationEngine, KVCache, SamplingParams
from repro.infer.kv_cache import kv_value_dtype
from repro.infer.paged_kv import PagedKVCache
from repro.nn import MLP
from repro.train.checkpoint import (CheckpointError, load_checkpoint,
                                    save_checkpoint)


def tiny_model(dtype=None):
    cfg = TransformerConfig(vocab_size=11, max_seq_len=32, d_model=16,
                            num_heads=2, num_layers=2, dtype=dtype)
    return TransformerLM(cfg, rng=0)


class TestPolicyResolution:
    def test_default_is_float64(self):
        assert default_dtype() == np.float64
        assert resolve_dtype(None) == np.float64

    def test_explicit_argument_wins(self):
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype(np.float32) == np.float32

    def test_dtype_scope_sets_and_restores(self):
        with dtype_scope("float32"):
            assert default_dtype() == np.float32
            with dtype_scope("float64"):
                assert default_dtype() == np.float64
            assert default_dtype() == np.float32
        assert default_dtype() == np.float64

    def test_dtype_scope_none_is_a_noop(self):
        with dtype_scope(None):
            assert default_dtype() == np.float64

    def test_set_default_returns_previous(self):
        prev = set_default_dtype("float32")
        try:
            assert prev == np.float64
            assert default_dtype() == np.float32
        finally:
            set_default_dtype(prev)
        assert default_dtype() == np.float64

    @pytest.mark.parametrize("bad", ["float16", np.int64, "bogus"])
    def test_unsupported_dtype_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_dtype(bad)

    def test_config_validates_dtype(self):
        with pytest.raises(ValueError):
            TransformerConfig(vocab_size=4, max_seq_len=4, d_model=4,
                              num_heads=2, num_layers=1, dtype="float16")


class TestTensorSemantics:
    def test_float_arrays_keep_dtype_and_buffer(self):
        arr = np.ones(3, dtype=np.float32)
        t = Tensor(arr)
        assert t.data.dtype == np.float32
        assert t.data is arr   # no silent copy — views stay views

    def test_non_float_input_casts_to_policy(self):
        assert Tensor([1, 2, 3]).data.dtype == np.float64
        with dtype_scope("float32"):
            assert Tensor([1, 2, 3]).data.dtype == np.float32

    def test_explicit_dtype_overrides(self):
        t = Tensor(np.ones(3, dtype=np.float64), dtype="float32")
        assert t.data.dtype == np.float32

    def test_python_scalars_do_not_upcast(self):
        x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        for y in (x * 2.0, x + 0.5, x / 3.0, 1.0 - x, x.mean(), x.sum()):
            assert y.data.dtype == np.float32, y.data.dtype

    def test_gradients_follow_data_dtype(self):
        x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        (x * x).sum().backward()
        assert x.grad.dtype == np.float32


class TestFloat32Model:
    def test_params_activations_gradients_float32(self):
        model = tiny_model(dtype="float32")
        assert model.param_dtype() == np.float32
        for name, p in model.named_parameters():
            assert p.data.dtype == np.float32, name
        ids = np.random.default_rng(0).integers(0, 11, size=(2, 8))
        loss = model.loss(ids, ids)
        assert loss.data.dtype == np.float32
        loss.backward()
        for name, p in model.named_parameters():
            assert p.grad.dtype == np.float32, name

    def test_same_rng_stream_as_float64(self):
        """Initializers draw in float64 and cast: the float32 model is the
        float64 model's parameters rounded, not a different draw."""
        m64, m32 = tiny_model(), tiny_model(dtype="float32")
        for (name, p64), (_, p32) in zip(sorted(m64.named_parameters()),
                                         sorted(m32.named_parameters())):
            np.testing.assert_array_equal(
                p64.data.astype(np.float32), p32.data, err_msg=name)

    def test_config_scope_does_not_leak(self):
        tiny_model(dtype="float32")
        assert default_dtype() == np.float64

    def test_mask_cache_keys_per_dtype(self):
        m64 = causal_mask(7)
        m32 = causal_mask(7, dtype=np.float32)
        assert m64 is not m32
        assert m64.dtype == np.float64 and m32.dtype == np.float32
        np.testing.assert_array_equal(m64.astype(np.float32), m32)


class TestKVPlumbing:
    def test_kv_value_dtype_resolution_order(self):
        assert kv_value_dtype() == np.float64
        assert kv_value_dtype(dtype="float32") == np.float32
        m32 = tiny_model(dtype="float32")
        assert kv_value_dtype(m32) == np.float32
        assert kv_value_dtype(m32, dtype="float64") == np.float64

    @pytest.mark.parametrize("cls", [KVCache, PagedKVCache],
                             ids=["dense", "paged"])
    def test_pool_follows_model_and_halves_bytes(self, cls):
        m64, m32 = tiny_model(), tiny_model(dtype="float32")
        c64 = cls.for_model(m64, batch_size=2)
        c32 = cls.for_model(m32, batch_size=2)
        assert c64.dtype == np.float64 and c32.dtype == np.float32
        assert c64.nbytes == 2 * c32.nbytes

    def test_index_arrays_stay_int64(self):
        cache = KVCache.for_model(tiny_model(dtype="float32"), batch_size=2)
        assert cache.lengths.dtype == np.int64

    def test_engine_stats_report_dtype(self):
        for dtype, name in ((None, "float64"), ("float32", "float32")):
            engine = GenerationEngine(tiny_model(dtype=dtype), batch_size=2,
                                      params=SamplingParams(greedy=True))
            stats = engine.stats()
            assert stats["dtype"] == name
            assert stats["kv"]["dtype"] == name


class TestCheckpoints:
    def test_round_trip_preserves_float32(self, tmp_path):
        rng = np.random.default_rng(0)
        with dtype_scope("float32"):
            model = MLP([4, 3], rng)
        save_checkpoint(tmp_path / "m", model)
        with dtype_scope("float32"):
            fresh = MLP([4, 3], np.random.default_rng(1))
        load_checkpoint(tmp_path / "m", fresh)
        for (name, a), (_, b) in zip(sorted(model.named_parameters()),
                                     sorted(fresh.named_parameters())):
            assert b.data.dtype == np.float32, name
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)

    def test_strict_dtype_mismatch_is_loud(self, tmp_path):
        rng = np.random.default_rng(0)
        with dtype_scope("float32"):
            model = MLP([4, 3], rng)
        save_checkpoint(tmp_path / "m", model)
        f64_model = MLP([4, 3], np.random.default_rng(1))
        with pytest.raises(CheckpointError, match="dtype mismatch"):
            load_checkpoint(tmp_path / "m", f64_model)

    def test_non_strict_load_casts(self, tmp_path):
        rng = np.random.default_rng(0)
        with dtype_scope("float32"):
            model = MLP([4, 3], rng)
        save_checkpoint(tmp_path / "m", model)
        f64_model = MLP([4, 3], np.random.default_rng(1))
        load_checkpoint(tmp_path / "m", f64_model, strict=False)
        for name, p in f64_model.named_parameters():
            assert p.data.dtype == np.float64, name

    def test_load_state_dict_casts_to_destination(self):
        model = MLP([4, 3], np.random.default_rng(0))
        state = {k: v.astype(np.float32) for k, v in model.state_dict().items()}
        model.load_state_dict(state)
        for name, p in model.named_parameters():
            assert p.data.dtype == np.float64, name


class TestPinnedFloat64:
    def test_gradcheck_refuses_float32(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with pytest.raises(TypeError, match="float64"):
            numerical_gradient(lambda t: (t * t).sum(), [x], 0)

    def test_sampling_rng_consumption_dtype_independent(self):
        """Same logits at either precision consume the RNG identically and
        pick the same tokens — sampling upcasts to float64 on entry."""
        from repro.core.sampling import sample_token
        logits = np.random.default_rng(0).standard_normal((4, 11))
        t64 = sample_token(logits, np.random.default_rng(5),
                           temperature=1.1, top_k=5)
        t32 = sample_token(logits.astype(np.float32),
                           np.random.default_rng(5),
                           temperature=1.1, top_k=5)
        np.testing.assert_array_equal(t64, t32)
