"""Unit tests for probes, structural probe, interventions, induction."""

import numpy as np
import pytest

from repro.core import TransformerConfig, TransformerLM
from repro.interp import (
    LinearProbe,
    MLPProbe,
    MultiTargetLinearProbe,
    ProbeExample,
    StructuralProbe,
    copying_accuracy,
    forward_with_patch,
    patch_position,
    per_position_loss,
    prefix_matching_scores,
    probe_guided_patch,
    repeated_sequence_batch,
    top_induction_head,
)


def _linearly_separable(n=300, d=8, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(classes, d))
    labels = rng.integers(0, classes, size=n)
    features = centers[labels] + rng.normal(scale=0.5, size=(n, d))
    return features, labels


class TestLinearProbe:
    def test_fits_separable_data(self):
        x, y = _linearly_separable()
        probe = LinearProbe(8, 3, rng=0)
        curve = probe.fit(x, y, epochs=20)
        assert curve[-1] < curve[0]
        assert probe.accuracy(x, y) > 0.95

    def test_predict_shape(self):
        x, y = _linearly_separable(n=20)
        probe = LinearProbe(8, 3, rng=0)
        assert probe.predict(x).shape == (20,)

    def test_weight_exposed(self):
        probe = LinearProbe(8, 3, rng=0)
        assert probe.weight.shape == (8, 3)

    def test_length_mismatch_raises(self):
        probe = LinearProbe(4, 2, rng=0)
        with pytest.raises(ValueError):
            probe.fit(np.zeros((5, 4)), np.zeros(6, dtype=int))

    def test_cannot_fit_xor_linearly(self):
        """Sanity: a linear probe fails on XOR; the MLP probe succeeds."""
        x = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] * 50)
        y = (x[:, 0].astype(int) ^ x[:, 1].astype(int))
        linear = LinearProbe(2, 2, rng=0)
        linear.fit(x, y, epochs=60, lr=5e-2)
        mlp = MLPProbe(2, 2, hidden=16, rng=0)
        mlp.fit(x, y, epochs=60, lr=5e-2)
        assert mlp.accuracy(x, y) > 0.95
        assert linear.accuracy(x, y) < 0.8


class TestMultiTargetProbe:
    def test_joint_fit(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(6, 2))  # two binary targets
        x = rng.normal(size=(400, 6))
        targets = np.stack([(x @ w[:, 0] > 0), (x @ w[:, 1] > 0)], axis=1).astype(int)
        probe = MultiTargetLinearProbe(6, num_targets=2, num_classes=2, rng=0)
        probe.fit(x, targets, epochs=30, lr=5e-2)
        preds = probe.predict(x)
        assert preds.shape == (400, 2)
        assert (preds == targets).mean() > 0.9

    def test_target_shape_validated(self):
        probe = MultiTargetLinearProbe(4, num_targets=3, num_classes=2, rng=0)
        with pytest.raises(ValueError):
            probe.loss(np.zeros((5, 4)), np.zeros((5, 2), dtype=int))

    def test_class_direction_shape(self):
        probe = MultiTargetLinearProbe(4, num_targets=3, num_classes=2, rng=0)
        assert probe.class_direction(2, 1).shape == (4,)


class TestStructuralProbe:
    def _synthetic_examples(self, d=12, rank=3, n=20, seed=0):
        """Embeddings whose distances under ONE hidden projection are the
        gold targets — exactly the structure the probe assumes."""
        rng = np.random.default_rng(seed)
        hidden = np.linalg.qr(rng.normal(size=(d, rank)))[0]
        examples = []
        for _ in range(n):
            words = rng.integers(4, 9)
            emb = rng.normal(size=(words, d))
            z = emb @ hidden
            gold = ((z[:, None, :] - z[None, :, :]) ** 2).sum(-1)
            examples.append(ProbeExample(embeddings=emb, distances=gold))
        return examples

    def test_fit_recovers_hidden_metric(self):
        examples = self._synthetic_examples()
        probe = StructuralProbe(12, rank=4, rng=0)
        curve = probe.fit(examples, epochs=80, lr=1e-2)
        assert curve[-1] < curve[0]
        assert probe.evaluate_spearman(examples) > 0.8

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            StructuralProbe(8, rank=0)
        with pytest.raises(ValueError):
            StructuralProbe(8, rank=9)

    def test_distance_matrix_shape_validated(self):
        with pytest.raises(ValueError):
            ProbeExample(embeddings=np.zeros((3, 4)), distances=np.zeros((2, 2)))

    def test_predicted_distances_symmetric_nonnegative(self):
        from repro.autograd import Tensor

        probe = StructuralProbe(6, rank=2, rng=0)
        d = probe.predicted_distances(Tensor(np.random.default_rng(0).normal(size=(5, 6)))).data
        assert np.allclose(d, d.T)
        assert (d >= -1e-12).all()
        assert np.allclose(np.diag(d), 0.0)

    def test_evaluate_requires_long_sentence(self):
        probe = StructuralProbe(6, rank=2, rng=0)
        short = [ProbeExample(np.zeros((2, 6)), np.zeros((2, 2)))]
        with pytest.raises(ValueError):
            probe.evaluate_spearman(short)


class TestClosedFormMetricProbe:
    def _examples(self, d=10, rank=3, n=25, seed=0):
        rng = np.random.default_rng(seed)
        # one hidden metric shared across train/test splits (fixed seed)
        hidden = np.linalg.qr(np.random.default_rng(42).normal(size=(d, rank)))[0]
        out = []
        for _ in range(n):
            words = rng.integers(4, 9)
            emb = rng.normal(size=(words, d))
            z = emb @ hidden
            gold = ((z[:, None, :] - z[None, :, :]) ** 2).sum(-1)
            out.append(ProbeExample(embeddings=emb, distances=gold))
        return out

    def test_recovers_hidden_metric_exactly(self):
        from repro.interp import (
            fit_distance_metric,
            metric_rank_projection,
            pooled_distance_spearman,
        )

        train = self._examples(seed=0)
        test = self._examples(seed=1)
        metric = fit_distance_metric(train, ridge=1e-6)
        projection = metric_rank_projection(metric, rank=3)
        assert pooled_distance_spearman(projection, test) > 0.98

    def test_rank_truncation_orders_by_eigenvalue(self):
        from repro.interp import metric_rank_projection

        metric = np.diag([5.0, 1.0, 0.1])
        b1 = metric_rank_projection(metric, 1)
        assert abs(b1[0, 0]) == pytest.approx(np.sqrt(5.0))

    def test_negative_eigenvalues_clipped(self):
        from repro.interp import metric_rank_projection

        metric = np.diag([2.0, -3.0])
        b = metric_rank_projection(metric, 2)
        # negative direction contributes nothing
        assert np.allclose((b**2).sum(axis=1), [2.0, 0.0])

    def test_shuffled_null_near_zero(self):
        from repro.interp import (
            fit_distance_metric,
            metric_rank_projection,
            pooled_distance_spearman,
        )

        train = self._examples(seed=0)
        metric = fit_distance_metric(train, ridge=1e-6)
        projection = metric_rank_projection(metric, rank=3)
        null = pooled_distance_spearman(projection, train, shuffle_gold=True,
                                        rng=np.random.default_rng(5))
        assert abs(null) < 0.2

    def test_validation(self):
        from repro.interp import (
            fit_distance_metric,
            metric_rank_projection,
            pooled_distance_spearman,
        )

        with pytest.raises(ValueError):
            fit_distance_metric([])
        with pytest.raises(ValueError):
            metric_rank_projection(np.eye(3), 0)
        with pytest.raises(ValueError):
            metric_rank_projection(np.eye(3), 4)
        ex = self._examples(n=2)
        metric = fit_distance_metric(ex)
        with pytest.raises(ValueError):
            pooled_distance_spearman(metric_rank_projection(metric, 2), ex,
                                     shuffle_gold=True)


class TestIntervention:
    @pytest.fixture(scope="class")
    def model(self):
        cfg = TransformerConfig(vocab_size=9, max_seq_len=12, d_model=16,
                                num_heads=2, num_layers=2)
        return TransformerLM(cfg, rng=0)

    def test_identity_patch_matches_plain_forward(self, model):
        x = np.array([[1, 2, 3, 4]])
        plain = model.forward(x).data
        patched = forward_with_patch(model, x, layer_index=0, patch_fn=lambda a: a)
        assert np.allclose(plain, patched)

    def test_patch_changes_downstream_logits(self, model):
        # NB: the delta must not be uniform across features — layer norm's
        # mean subtraction makes a constant shift exactly invisible.
        delta = np.zeros(16)
        delta[3] = 5.0
        x = np.array([[1, 2, 3, 4]])
        plain = model.forward(x).data
        patched = forward_with_patch(
            model, x, layer_index=0,
            patch_fn=patch_position(1, delta),
        )
        assert not np.allclose(plain[0, 1:], patched[0, 1:])

    def test_uniform_shift_is_invisible_through_layernorm(self, model):
        """A constant vector added to the residual stream is removed by
        every subsequent layer norm — a useful interpretability fact."""
        x = np.array([[1, 2, 3, 4]])
        plain = model.forward(x).data
        patched = forward_with_patch(
            model, x, layer_index=0,
            patch_fn=patch_position(1, np.full(16, 5.0)),
        )
        assert np.allclose(plain, patched)

    def test_patch_at_last_layer_respects_causality(self, model):
        """A patch at position t cannot change logits before t."""
        x = np.array([[1, 2, 3, 4, 5]])
        plain = model.forward(x).data
        patched = forward_with_patch(
            model, x, layer_index=1,
            patch_fn=patch_position(3, np.full(16, 5.0)),
        )
        assert np.allclose(plain[0, :3], patched[0, :3])

    def test_layer_index_validated(self, model):
        with pytest.raises(IndexError):
            forward_with_patch(model, np.array([[1]]), 5, lambda a: a)

    def test_shape_change_rejected(self, model):
        with pytest.raises(ValueError):
            forward_with_patch(model, np.array([[1, 2]]), 0,
                               lambda a: a[:, :1, :])

    def test_probe_guided_patch_moves_along_direction(self):
        w_from, w_to = np.zeros(4), np.array([2.0, 0.0, 0.0, 0.0])
        fn = probe_guided_patch(w_from, w_to, position=0, strength=3.0)
        acts = np.zeros((1, 2, 4))
        out = fn(acts)
        assert np.allclose(out[0, 0], [3.0, 0, 0, 0])
        assert np.allclose(out[0, 1], 0.0)

    def test_identical_directions_rejected(self):
        with pytest.raises(ValueError):
            probe_guided_patch(np.ones(3), np.ones(3), position=0)

    def test_cache_populated(self, model):
        cache = {}
        forward_with_patch(model, np.array([[1, 2]]), 0, lambda a: a, cache=cache)
        assert "block0.weights" in cache


class TestInduction:
    def test_repeated_batch_structure(self):
        x = repeated_sequence_batch(np.random.default_rng(0), 10, 6, 4)
        assert x.shape == (4, 12)
        assert np.array_equal(x[:, :6], x[:, 6:])

    def test_half_len_validated(self):
        with pytest.raises(ValueError):
            repeated_sequence_batch(np.random.default_rng(0), 10, 1, 2)

    def test_prefix_scores_shape_and_range(self, ):
        cfg = TransformerConfig(vocab_size=12, max_seq_len=16, d_model=16,
                                num_heads=4, num_layers=2)
        model = TransformerLM(cfg, rng=0)
        x = repeated_sequence_batch(np.random.default_rng(0), 12, 8, 4)
        scores = prefix_matching_scores(model, x)
        assert scores.shape == (2, 4)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_prefix_scores_reject_non_repeated(self):
        cfg = TransformerConfig(vocab_size=12, max_seq_len=16, d_model=16,
                                num_heads=2, num_layers=1)
        model = TransformerLM(cfg, rng=0)
        with pytest.raises(ValueError):
            prefix_matching_scores(model, np.arange(10)[None, :])

    def test_copying_and_loss_on_untrained_model(self):
        cfg = TransformerConfig(vocab_size=12, max_seq_len=16, d_model=16,
                                num_heads=2, num_layers=1)
        model = TransformerLM(cfg, rng=0)
        x = repeated_sequence_batch(np.random.default_rng(0), 12, 8, 8)
        first, second = copying_accuracy(model, x)
        assert 0 <= first <= 1 and 0 <= second <= 1
        losses = per_position_loss(model, x)
        assert losses.shape == (15,)
        assert np.isfinite(losses).all()

    def test_top_induction_head_returns_valid_index(self):
        cfg = TransformerConfig(vocab_size=12, max_seq_len=16, d_model=16,
                                num_heads=4, num_layers=2)
        model = TransformerLM(cfg, rng=0)
        x = repeated_sequence_batch(np.random.default_rng(0), 12, 8, 4)
        layer, head, score = top_induction_head(model, x)
        assert 0 <= layer < 2 and 0 <= head < 4 and 0 <= score <= 1


class TestAttentionViz:
    def test_render_shapes_and_glyphs(self):
        from repro.interp import render_attention

        weights = np.array([[1.0, 0.0], [0.5, 0.5]])
        text = render_attention(weights, tokens=["the", "cat"])
        lines = text.splitlines()
        assert len(lines) == 2
        assert "@" in lines[0]  # weight 1.0 -> densest glyph
        assert lines[0].startswith("the")

    def test_render_validation(self):
        from repro.interp import render_attention

        with pytest.raises(ValueError):
            render_attention(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            render_attention(np.full((2, 2), 2.0))
        with pytest.raises(ValueError):
            render_attention(np.zeros((2, 2)), tokens=["a"])

    def test_strongest_edges_sorted(self):
        from repro.interp import strongest_attention_edges

        weights = np.array([[0.1, 0.9], [0.7, 0.3]])
        edges = strongest_attention_edges(weights, top_k=2)
        assert edges[0] == (0, 1, 0.9)
        assert edges[1] == (1, 0, 0.7)

    def test_exclude_self(self):
        from repro.interp import strongest_attention_edges

        weights = np.eye(3)
        assert strongest_attention_edges(weights, top_k=2) == [
            (0, 1, 0.0), (0, 2, 0.0)]
