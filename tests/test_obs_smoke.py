"""Tier-1 smoke: a tiny fully-instrumented train + generate run must
produce valid, mutually consistent telemetry artifacts.

This is the end-to-end check behind the PR 2 observability work: one
Observability bundle threaded through ``train_lm_on_stream`` and a
``GenerationEngine``, artifacts dumped with ``write_artifacts``, and the
exported Chrome trace / metrics snapshot / JSONL event log validated
structurally (the trace must load as Chrome trace-event JSON with
correctly nested spans).
"""

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import TransformerConfig, TransformerLM
from repro.infer import GenerationEngine, SamplingParams
from repro.obs import Observability
from repro.train import train_lm_on_stream

_STEPS = 6
_MAX_NEW = 8


@pytest.fixture(scope="module")
def instrumented_run(tmp_path_factory):
    """One tiny train + generate with full telemetry, artifacts on disk."""
    obs = Observability.standard()
    cfg = TransformerConfig(vocab_size=16, max_seq_len=32, d_model=16,
                            num_heads=2, num_layers=1)
    model = TransformerLM(cfg, rng=0)
    ids = np.random.default_rng(0).integers(0, 16, size=512)
    history = train_lm_on_stream(model, ids, num_steps=_STEPS, batch_size=4,
                                 seq_len=8, obs=obs)

    engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True), obs=obs)
    for prompt in ([1, 2, 3], [4, 5, 6]):
        engine.submit(prompt, _MAX_NEW)
    results = engine.run()

    out_dir = tmp_path_factory.mktemp("obs_artifacts")
    paths = obs.write_artifacts(out_dir)
    return {"obs": obs, "history": history, "engine": engine,
            "results": results, "paths": paths}


def test_artifacts_written(instrumented_run):
    paths = instrumented_run["paths"]
    assert set(paths) == {"trace", "metrics", "events"}
    for path in paths.values():
        assert Path(path).stat().st_size > 0


def test_trace_is_valid_chrome_json(instrumented_run):
    trace = json.loads(Path(instrumented_run["paths"]["trace"]).read_text())
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert events, "trace must not be empty"
    for e in events:
        assert e["ph"] in ("X", "i")
        assert isinstance(e["ts"], int)
        if e["ph"] == "X":
            assert isinstance(e["dur"], int) and e["dur"] >= 1
    names = {e["name"] for e in events}
    assert {"train.run", "train.step", "train.forward", "train.backward",
            "engine.step"} <= names


def test_trace_spans_nest_correctly(instrumented_run):
    tracer = instrumented_run["obs"].tracer
    by_name = {}
    for span in tracer.spans:
        by_name.setdefault(span["name"], []).append(span)
    run = by_name["train.run"][0]
    steps = by_name["train.step"]
    assert len(steps) == _STEPS
    for step in steps:
        assert step["parent"] == "train.run"
        assert step["depth"] == run["depth"] + 1
        assert run["start"] <= step["start"] <= step["end"] <= run["end"]
    for inner in ("train.forward", "train.backward", "train.optimizer"):
        for span in by_name[inner]:
            assert span["parent"] == "train.step"
    # nesting must also hold after integer-microsecond export
    trace = json.loads(Path(instrumented_run["paths"]["trace"]).read_text())
    complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    run_evt = next(e for e in complete if e["name"] == "train.run")
    for e in complete:
        if e["name"].startswith("train."):
            assert run_evt["ts"] <= e["ts"]
            assert e["ts"] + e["dur"] <= run_evt["ts"] + run_evt["dur"]


def test_metrics_snapshot_consistent(instrumented_run):
    metrics = json.loads(Path(instrumented_run["paths"]["metrics"]).read_text())
    engine = instrumented_run["engine"]
    assert metrics["train.steps"]["value"] == _STEPS
    assert metrics["train.tokens"]["value"] == _STEPS * 4 * 8
    assert metrics["train.step_seconds"]["count"] == _STEPS
    assert metrics["engine.steps"]["value"] == engine.total_steps
    assert metrics["engine.sampled_tokens"]["value"] == 2 * _MAX_NEW
    assert metrics["engine.ttft_seconds"]["count"] == 2


def test_event_log_round_trips(instrumented_run):
    lines = Path(instrumented_run["paths"]["events"]).read_text().splitlines()
    records = [json.loads(line) for line in lines]
    kinds = {r["event"] for r in records}
    assert {"train_step", "request_submitted", "request_admitted",
            "request_finished"} <= kinds
    train_steps = [r for r in records if r["event"] == "train_step"]
    assert len(train_steps) == _STEPS
    assert [r["step"] for r in train_steps] == list(range(_STEPS))
    history = instrumented_run["history"]
    assert [r["loss"] for r in train_steps] == history.losses
    finished = [r for r in records if r["event"] == "request_finished"]
    assert len(finished) == 2
    assert all(r["new_tokens"] == _MAX_NEW for r in finished)


def test_generation_results_carry_timing(instrumented_run):
    for result in instrumented_run["results"]:
        t = result.timing
        assert t is not None
        assert t.submitted <= t.admitted <= t.first_token <= t.finished
        assert t.new_tokens == _MAX_NEW


def test_bench_harness_record(tmp_path):
    """The benchmarks/_util BenchRun context writes a provenance-stamped
    record through the same instrumented path every bench uses."""
    bench_dir = str(Path(__file__).resolve().parent.parent / "benchmarks")
    sys.path.insert(0, bench_dir)
    try:
        from _util import BenchRun, provenance
    finally:
        sys.path.remove(bench_dir)

    out = tmp_path / "BENCH_smoke.json"
    trace_out = tmp_path / "trace.json"
    with BenchRun("smoke", out=out, trace_out=trace_out,
                  config={"n": 1}) as br:
        with br.obs.tracer.span("bench.work"):
            pass
        br.record({"value": 42})
    record = json.loads(out.read_text())
    assert record["bench"] == "smoke"
    assert record["value"] == 42
    assert record["wall_seconds"] > 0
    prov = record["provenance"]
    assert set(prov) >= {"git_sha", "repro_scale", "numpy_version",
                         "python_version", "timestamp", "config"}
    assert prov["config"] == {"n": 1}
    assert prov["numpy_version"] == np.__version__
    trace = json.loads(trace_out.read_text())
    names = {e["name"] for e in trace["traceEvents"]}
    assert {"bench.smoke", "bench.work"} <= names
    # provenance() is also directly callable and JSON-clean
    prov = provenance()
    assert json.loads(json.dumps(prov)) == prov
