"""Run the doctests embedded in ``repro.train`` modules.

Equivalent to ``pytest --doctest-modules src/repro/train`` but wired
into the plain tier-1 invocation, so the usage examples in the
checkpoint docs are executed, not just read.
"""

import doctest

import repro.train.checkpoint
import repro.train.faults
import repro.train.metrics
import repro.train.trainer

MODULES = [
    repro.train.checkpoint,
    repro.train.faults,
    repro.train.metrics,
    repro.train.trainer,
]


def test_train_doctests_pass():
    attempted = 0
    for module in MODULES:
        result = doctest.testmod(module, verbose=False, report=True)
        assert result.failed == 0, f"doctest failures in {module.__name__}"
        attempted += result.attempted
    # The checkpoint quick-start examples must actually have run.
    assert attempted >= 10
