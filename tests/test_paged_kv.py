"""Paged KV cache suite: allocator, sharing, and engine equivalence.

Three layers, bottom up.  Pool mechanics: free-list accounting,
refcounts, copy-on-write forks, and exhaustion in the raw
:class:`~repro.infer.PagedKVCache`.  Prefix cache: chained keying, LRU
eviction, idempotent registration.  Engine integration: the paged
default is **bit-identical to the dense backend** on non-shared seeded
workloads (the tentpole guarantee), prefix hits skip prefill without
changing trajectories, pool exhaustion mid-decode preempts-and-queues
instead of crashing, and cancel/finish reclaim pages.
"""

import numpy as np
import pytest

from repro.core import TransformerConfig, TransformerLM
from repro.infer import (GenerationEngine, PagedKVCache, PagePoolExhausted,
                         SamplingParams,
                         PromptLimitError)


def tiny_model(**kwargs):
    cfg = TransformerConfig(vocab_size=13, max_seq_len=64, d_model=16,
                            num_heads=2, num_layers=2, **kwargs)
    return TransformerLM(cfg, rng=0)


@pytest.fixture(scope="module")
def model():
    return tiny_model()


def make_cache(**kwargs):
    defaults = dict(num_layers=2, batch_size=3, num_heads=2, max_seq_len=32,
                    head_dim=8, page_size=4)
    defaults.update(kwargs)
    return PagedKVCache(**defaults)


def decode_one(cache, slot, rng, steps=1):
    """Drive ``steps`` single-slot appends through every layer."""
    for _ in range(steps):
        cache.set_active(np.array([slot]))
        for layer in cache.layers:
            layer.append(rng.standard_normal((1, 2, 8)),
                         rng.standard_normal((1, 2, 8)))
        cache.advance()


class TestPagePool:
    def test_pages_allocated_on_demand_not_up_front(self):
        cache = make_cache(prefix_sharing=False)
        assert cache.used_pages == 0
        decode_one(cache, 0, np.random.default_rng(0), steps=5)
        # 5 positions at page_size 4 -> exactly 2 pages, for all layers
        assert cache.block_tables[0] == [0, 1]
        assert cache.used_pages == 2
        assert cache.lengths[0] == 5

    def test_reset_slot_returns_pages_to_free_list(self):
        cache = make_cache(prefix_sharing=False)
        decode_one(cache, 0, np.random.default_rng(0), steps=6)
        decode_one(cache, 1, np.random.default_rng(1), steps=2)
        used = cache.used_pages
        cache.reset_slot(0)
        assert cache.used_pages == used - 2
        assert cache.block_tables[0] == []
        assert int(cache.lengths[0]) == 0
        assert np.all(cache.refcounts >= 0)

    def test_exhaustion_raises_without_prefix_cache(self):
        cache = make_cache(num_pages=2, prefix_sharing=False)
        decode_one(cache, 0, np.random.default_rng(0), steps=8)
        with pytest.raises(PagePoolExhausted):
            decode_one(cache, 1, np.random.default_rng(1), steps=1)

    def test_overflow_guard_matches_dense_semantics(self):
        cache = make_cache(max_seq_len=8, prefix_sharing=False)
        decode_one(cache, 0, np.random.default_rng(0), steps=8)
        with pytest.raises(ValueError, match="overflow"):
            decode_one(cache, 0, np.random.default_rng(0), steps=1)

    def test_gather_matches_dense_layout_bitwise(self):
        """The paged gather must reproduce the dense buffer exactly."""
        from repro.infer import KVCache
        rng = np.random.default_rng(7)
        paged = make_cache(prefix_sharing=False)
        dense = KVCache(num_layers=2, batch_size=3, num_heads=2,
                        max_seq_len=32, head_dim=8)
        steps = [5, 3, 5]   # ragged lengths across three slots
        for slot, n in enumerate(steps):
            for _ in range(n):
                k = rng.standard_normal((1, 2, 8))
                v = rng.standard_normal((1, 2, 8))
                for cache in (paged, dense):
                    cache.set_active(np.array([slot]))
                ret_p = [layer.append(k, v) for layer in paged.layers]
                ret_d = [layer.append(k, v) for layer in dense.layers]
                paged.advance()
                dense.advance()
        for (kp, vp, mp), (kd, vd, md) in zip(ret_p, ret_d):
            assert np.array_equal(kp, kd) and np.array_equal(vp, vd)
        # mixed-length batch: identical gathered values and masks
        for cache in (paged, dense):
            cache.set_active(np.arange(3))
        k = rng.standard_normal((3, 2, 8))
        v = rng.standard_normal((3, 2, 8))
        for lp, ld in zip(paged.layers, dense.layers):
            kp, vp, mp = lp.append(k, v)
            kd, vd, md = ld.append(k, v)
            np.testing.assert_array_equal(mp, md)
            valid = ~np.isinf(mp)             # garbage only behind -inf
            assert np.array_equal(kp[..., :][np.broadcast_to(
                valid[:, None, :, None], kp.shape)],
                kd[np.broadcast_to(valid[:, None, :, None], kd.shape)])


class TestCopyOnWrite:
    def test_fork_shares_pages_without_copying(self):
        cache = make_cache(prefix_sharing=False)
        decode_one(cache, 0, np.random.default_rng(0), steps=6)
        used = cache.used_pages
        cache.fork_slot(0, 1)
        assert cache.used_pages == used          # zero new pages
        assert cache.block_tables[1] == cache.block_tables[0]
        assert cache.shared_pages == 2
        assert int(cache.lengths[1]) == 6

    def test_divergent_write_copies_not_corrupts(self):
        cache = make_cache(prefix_sharing=False)
        rng = np.random.default_rng(0)
        decode_one(cache, 0, rng, steps=6)
        cache.fork_slot(0, 1)
        before = cache._gather(cache._k[0], np.array([0]), 0, 6).copy()
        decode_one(cache, 1, rng, steps=1)       # writes shared page 1
        after = cache._gather(cache._k[0], np.array([0]), 0, 6)
        np.testing.assert_array_equal(before, after)
        # the fork's first 6 positions still equal the parent's
        forked = cache._gather(cache._k[0], np.array([1]), 0, 6)
        np.testing.assert_array_equal(forked, before)
        # and the tables have genuinely diverged on the written page
        assert cache.block_tables[0][1] != cache.block_tables[1][1]
        assert cache.block_tables[0][0] == cache.block_tables[1][0]

    def test_fork_onto_self_rejected(self):
        cache = make_cache(prefix_sharing=False)
        with pytest.raises(ValueError):
            cache.fork_slot(0, 0)


class TestPrefixCache:
    def test_chained_keys_register_full_pages_only(self):
        cache = make_cache()
        decode_one(cache, 0, np.random.default_rng(0), steps=10)
        tokens = list(range(10))
        assert cache.register_prefix(0, tokens) == 2   # 10 // 4 full pages
        assert len(cache.prefix) == 2
        # re-registration is a no-op
        assert cache.register_prefix(0, tokens) == 0

    def test_match_caps_below_full_prompt(self):
        """A full-prompt hit must still leave one token to feed."""
        cache = make_cache()
        decode_one(cache, 0, np.random.default_rng(0), steps=8)
        tokens = list(range(8))
        cache.register_prefix(0, tokens)
        assert len(cache.prefix.match(tokens, record=False)) == 1  # not 2

    def test_try_admit_attaches_matched_pages(self):
        cache = make_cache()
        decode_one(cache, 0, np.random.default_rng(0), steps=8)
        tokens = list(range(8))
        cache.register_prefix(0, tokens)
        cached = cache.try_admit(1, tokens + [99])
        assert cached == 8                       # both pages reused
        assert cache.block_tables[1] == cache.block_tables[0][:2]
        assert cache.prefix.hits == 1
        # shared pages are refcounted: slot 0 + slot 1 + cache itself
        assert cache.refcounts[cache.block_tables[1][0]] == 3

    def test_try_admit_returns_none_when_pool_cannot_supply(self):
        cache = make_cache(num_pages=2, prefix_sharing=False)
        decode_one(cache, 0, np.random.default_rng(0), steps=8)
        assert cache.try_admit(1, list(range(5))) is None
        # failed admission must not leak references
        assert cache.used_pages == 2
        assert np.all(cache.refcounts <= 1)

    def test_lru_eviction_frees_oldest_unshared_entry(self):
        cache = make_cache(num_pages=4)
        decode_one(cache, 0, np.random.default_rng(0), steps=4)
        cache.register_prefix(0, [1, 1, 1, 1])
        cache.reset_slot(0)                      # cache is now sole holder
        decode_one(cache, 0, np.random.default_rng(0), steps=4)
        cache.register_prefix(0, [2, 2, 2, 2])
        cache.reset_slot(0)
        assert len(cache.prefix) == 2 and cache.free_pages == 2
        # demand 3 fresh pages: 2 free + 1 evicted (the older entry)
        decode_one(cache, 0, np.random.default_rng(0), steps=9)
        assert cache.prefix.evictions == 1
        assert len(cache.prefix.match([1, 1, 1, 1, 9], record=False)) == 0
        assert len(cache.prefix.match([2, 2, 2, 2, 9], record=False)) == 1

    def test_shared_entries_are_not_evictable(self):
        cache = make_cache(num_pages=2)
        decode_one(cache, 0, np.random.default_rng(0), steps=4)
        cache.register_prefix(0, [1, 1, 1, 1])   # page shared: slot + cache
        decode_one(cache, 1, np.random.default_rng(0), steps=4)
        assert cache.prefix.evictable_pages == 0
        with pytest.raises(PagePoolExhausted):
            cache.prefix.evict_one()


class TestEngineEquivalence:
    SAMPLING = [{"greedy": True}, {"temperature": 1.2, "top_k": 5},
                {"temperature": 0.8, "top_p": 0.9}]

    @pytest.mark.parametrize("sampling", SAMPLING,
                             ids=["greedy", "topk", "topp"])
    def test_paged_bit_identical_to_dense_multi_slot(self, model, sampling):
        """The tentpole guarantee: same seed, same trajectories, both
        backends, with ragged multi-slot batches and queueing."""
        prompts = [[1, 2, 3], [4, 5], [6, 7, 8, 9, 1, 2, 3, 4], [2],
                   [3, 1, 4, 1, 5], [9, 8, 7]]
        dense = GenerationEngine(model, batch_size=3, paged=False,
                                 rng=np.random.default_rng(11),
                                 params=SamplingParams(**sampling))
        paged = GenerationEngine(model, batch_size=3, paged=True,
                                 rng=np.random.default_rng(11),
                                 params=SamplingParams(**sampling))
        assert dense.generate(prompts, 14) == paged.generate(prompts, 14)

    def test_paged_bit_identical_with_attention_window(self):
        model = tiny_model(attention_window=6)
        prompts = [[1, 2, 3, 4, 5], [6, 7], [8, 9, 1]]
        dense = GenerationEngine(model, batch_size=2, paged=False,
                                 rng=np.random.default_rng(3),
                                 params=SamplingParams(temperature=1.1))
        paged = GenerationEngine(model, batch_size=2, paged=True,
                                 rng=np.random.default_rng(3),
                                 params=SamplingParams(temperature=1.1))
        assert dense.generate(prompts, 12) == paged.generate(prompts, 12)

    def test_prefix_hits_skip_prefill_same_tokens(self, model):
        """Requests sharing a system prompt hit the cache, run fewer
        steps, and still match the no-cache reference exactly."""
        system = list(np.random.default_rng(0).integers(1, 12, size=40))
        engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True),
                                  kv_page_size=8)
        cold = engine.generate([system + [1]], 6)[0]
        cold_steps = engine.total_steps
        warm = engine.generate([system + [2]], 6)[0]
        warm_steps = engine.total_steps - cold_steps
        assert cold == model.generate_fast(system + [1], 6, greedy=True)
        assert warm == model.generate_fast(system + [2], 6, greedy=True)
        # 40 shared tokens / page 8 = 5 pages = 40 positions skipped
        assert warm_steps == cold_steps - 40
        stats = engine.stats()["kv"]["prefix_cache"]
        assert stats["hits"] == 1 and stats["hit_tokens"] == 40

    def test_prefix_cache_off_still_identical(self, model):
        system = [1, 2, 3, 4, 5, 6, 7, 8]
        engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True),
                                  prefix_cache=False)
        for suffix in (1, 2):
            out = engine.generate([system + [suffix]], 5)[0]
            assert out == model.generate_fast(system + [suffix], 5,
                                              greedy=True)
        assert engine.stats()["kv"].get("prefix_cache") is None


class TestEnginePagePressure:
    def test_pool_exhaustion_mid_decode_preempts_not_crashes(self, model):
        """Both sequences fit at admission but outgrow the pool while
        decoding; the youngest is preempted and replayed, and greedy
        trajectories still match the unconstrained reference."""
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True),
                                  kv_page_size=4, kv_num_pages=8,
                                  prefix_cache=False)
        prompts = [[1, 2, 3, 4], [5, 6, 7, 8]]
        outs = engine.generate(prompts, 20)
        assert outs == [model.generate_fast(p, 20, greedy=True)
                        for p in prompts]
        assert engine.preemptions > 0
        assert engine.cache.used_pages == 0      # everything reclaimed

    def test_admission_queues_when_pages_short(self, model):
        """A prompt whose pages don't fit right now waits in the queue
        (FIFO preserved) instead of crashing or jumping the line."""
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True),
                                  kv_page_size=4, kv_num_pages=3,
                                  prefix_cache=False)
        outs = engine.generate([[1] * 8, [2] * 8, [3] * 8], 3)
        assert outs == [model.generate_fast(p, 3, greedy=True)
                        for p in ([1] * 8, [2] * 8, [3] * 8)]

    def test_oversized_request_rejected_at_submit(self, model):
        engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True),
                                  kv_page_size=4, kv_num_pages=4)
        with pytest.raises(PromptLimitError) as excinfo:
            engine.submit([1, 2, 3], 20)         # 23 tokens > 16 positions
        assert excinfo.value.limits["kv_num_pages"] == 4

    def test_cancel_reclaims_pages(self, model):
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True),
                                  prefix_cache=False)
        rid = engine.submit([1, 2, 3, 4, 5], 20)
        for _ in range(8):
            engine.step()
        assert engine.cache.used_pages > 0
        engine.cancel(rid)
        assert engine.cache.used_pages == 0

    def test_finished_requests_leave_only_prefix_pages(self, model):
        engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True),
                                  kv_page_size=4)
        engine.generate([[1, 2, 3, 4, 5, 6, 7, 8]], 4)
        # slot reclaimed; the two full prompt pages live on, evictable
        assert engine.cache.used_pages == 2
        assert engine.cache.prefix.evictable_pages == 2

    def test_eviction_cycle_under_tiny_pool(self, model):
        """Distinct prompts churning a tiny pool force LRU evictions and
        never corrupt decoding."""
        engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True),
                                  kv_page_size=4, kv_num_pages=6)
        for i in range(5):
            prompt = [i + 1] * 8 + [i + 2]
            out = engine.generate([prompt], 4)[0]
            assert out == model.generate_fast(prompt, 4, greedy=True)
        assert engine.cache.prefix.evictions > 0


class TestStatsAndMetrics:
    def test_stats_kv_section_paged_and_dense(self, model):
        paged = GenerationEngine(model, batch_size=2).stats()["kv"]
        assert paged["backend"] == "paged"
        assert {"page_size", "num_pages", "pages_free", "pages_used",
                "pages_shared", "kv_bytes_pool",
                "prefix_cache"} <= paged.keys()
        dense = GenerationEngine(model, batch_size=2,
                                 paged=False).stats()["kv"]
        assert dense["backend"] == "dense"

    def test_page_gauges_and_prefix_counters_exported(self, model):
        from repro.obs import Observability
        from repro.obs.metrics import MetricsRegistry
        obs = Observability(metrics=MetricsRegistry())
        engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True),
                                  kv_page_size=8, obs=obs)
        system = list(np.random.default_rng(1).integers(1, 12, size=16))
        engine.generate([system + [1]], 4)
        engine.generate([system + [2]], 4)
        snap = obs.metrics.snapshot()
        assert snap["engine.kv_pages_used"]["value"] >= 2
        assert snap["prefix_cache.hit"]["value"] == 1
        assert snap["prefix_cache.miss"]["value"] == 1
        assert snap["engine.kv_pages_free"]["value"] > 0
        assert "engine.kv_pages_shared" in snap

    def test_default_pool_matches_dense_capacity(self, model):
        engine = GenerationEngine(model, batch_size=4)
        cache = engine.cache
        assert cache.num_pages * cache.page_size >= 4 * cache.max_seq_len
        # dense-capacity pools never preempt: worst case always fits
        assert cache.num_pages == 4 * (-(-cache.max_seq_len
                                         // cache.page_size))
