"""Unit tests for full-state checkpoints: format, integrity, faults, rotation."""

import json

import numpy as np
import pytest

from repro.nn import MLP, SGD, AdamW, WarmupCosine
from repro.train.checkpoint import (
    CheckpointError,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    load_training_checkpoint,
    manifest_path_for,
    save_checkpoint,
    save_training_checkpoint,
    verify_checkpoint,
)
from repro.train.faults import clear, corrupt_file, inject, truncate_file


@pytest.fixture(autouse=True)
def _disarm_failpoints():
    yield
    clear()


def make_model(seed: int = 1) -> MLP:
    return MLP([3, 8, 3], np.random.default_rng(seed))


def make_trained(optimizer_cls=AdamW, steps: int = 5):
    """A model + optimizer that have actually taken steps (non-trivial state)."""
    from repro.autograd import Tensor

    model = make_model()
    optimizer = optimizer_cls(model.parameters(), lr=0.05)
    rng = np.random.default_rng(9)
    for _ in range(steps):
        model.zero_grad()
        x = Tensor(rng.normal(size=(4, 3)))
        model(x).square().mean().backward()
        optimizer.step()
    return model, optimizer, rng


class TestRoundTrip:
    def test_full_state_round_trips_exactly(self, tmp_path):
        model, optimizer, rng = make_trained()
        schedule = WarmupCosine(peak_lr=0.05, warmup_steps=2, total_steps=50)
        history = {"losses": [3.0, 2.0], "steps": [0, 1]}
        save_training_checkpoint(
            tmp_path, 2, model, optimizer, rng=rng, schedule=schedule,
            history=history, config={"d": 3}, extra={"note": "hi"})

        model2 = make_model(seed=2)  # different init: must be overwritten
        optimizer2 = AdamW(model2.parameters(), lr=0.05)
        rng2 = np.random.default_rng(0)
        state = load_training_checkpoint(
            tmp_path, model2, optimizer2, rng=rng2, schedule=schedule)

        assert state.step == 2
        assert state.history == history
        assert state.config == {"d": 3}
        assert state.extra == {"note": "hi"}
        for name, value in model.state_dict().items():
            assert np.array_equal(value, model2.state_dict()[name]), name
        # Adam moments and step count restored exactly.
        assert optimizer2._step_count == optimizer._step_count == 5
        for m1, m2 in zip(optimizer._m, optimizer2._m):
            assert np.array_equal(m1, m2)
        for v1, v2 in zip(optimizer._v, optimizer2._v):
            assert np.array_equal(v1, v2)
        # The restored RNG continues the exact same stream.
        assert rng2.bit_generator.state == rng.bit_generator.state
        assert np.array_equal(rng2.normal(size=5), rng.normal(size=5))

    def test_sgd_velocity_round_trips(self, tmp_path):
        model, optimizer, rng = make_trained(
            lambda params, lr: SGD(params, lr, momentum=0.9))
        save_training_checkpoint(tmp_path, 1, model, optimizer, rng=rng)
        model2 = make_model(seed=3)
        optimizer2 = SGD(model2.parameters(), lr=0.05, momentum=0.9)
        load_training_checkpoint(tmp_path, model2, optimizer2)
        for v1, v2 in zip(optimizer._velocity, optimizer2._velocity):
            assert np.array_equal(v1, v2)
            assert np.abs(v1).sum() > 0  # states were non-trivial

    def test_optimizer_kind_mismatch_raises(self, tmp_path):
        model, optimizer, rng = make_trained()
        save_training_checkpoint(tmp_path, 1, model, optimizer)
        wrong = SGD(make_model().parameters(), lr=0.05)
        with pytest.raises(ValueError, match="AdamW"):
            load_training_checkpoint(tmp_path, make_model(), wrong)

    def test_schedule_mismatch_raises(self, tmp_path):
        model, optimizer, rng = make_trained()
        saved = WarmupCosine(peak_lr=0.05, warmup_steps=2, total_steps=50)
        save_training_checkpoint(tmp_path, 1, model, schedule=saved)
        other = WarmupCosine(peak_lr=0.05, warmup_steps=2, total_steps=99)
        with pytest.raises(ValueError, match="schedule"):
            load_training_checkpoint(tmp_path, make_model(), schedule=other)

    def test_rng_kind_mismatch_raises(self, tmp_path):
        model, _, rng = make_trained()
        save_training_checkpoint(tmp_path, 1, model, rng=rng)
        mt = np.random.Generator(np.random.MT19937(0))
        with pytest.raises(CheckpointError, match="RNG mismatch"):
            load_training_checkpoint(tmp_path, make_model(), rng=mt)


class TestRotation:
    def test_keep_last_prunes_oldest(self, tmp_path):
        model, optimizer, rng = make_trained()
        for step in (10, 20, 30, 40):
            save_training_checkpoint(tmp_path, step, model, optimizer,
                                     rng=rng, keep_last=2)
        assert [c.step for c in list_checkpoints(tmp_path)] == [30, 40]
        # Manifests of pruned snapshots are gone too.
        leftovers = sorted(p.name for p in tmp_path.iterdir())
        assert leftovers == ["ckpt-00000030.npz",
                             "ckpt-00000030.npz.manifest.json",
                             "ckpt-00000040.npz",
                             "ckpt-00000040.npz.manifest.json"]

    def test_no_rotation_without_keep_last(self, tmp_path):
        model, optimizer, rng = make_trained()
        for step in (1, 2, 3):
            save_training_checkpoint(tmp_path, step, model)
        assert [c.step for c in list_checkpoints(tmp_path)] == [1, 2, 3]


class TestIntegrity:
    def test_verify_passes_on_good_snapshot(self, tmp_path):
        model, optimizer, rng = make_trained()
        path = save_training_checkpoint(tmp_path, 5, model, optimizer, rng=rng)
        manifest = verify_checkpoint(path)
        assert manifest["step"] == 5
        assert manifest["format_version"] == 1
        assert any(k.startswith("model/") for k in manifest["arrays"])

    def test_verify_catches_silent_corruption(self, tmp_path):
        model, *_ = make_trained()
        path = save_training_checkpoint(tmp_path, 5, model)
        corrupt_file(path)
        with pytest.raises(CheckpointError):
            verify_checkpoint(path)

    def test_verify_catches_truncation(self, tmp_path):
        model, *_ = make_trained()
        path = save_training_checkpoint(tmp_path, 5, model)
        truncate_file(path)
        with pytest.raises(CheckpointError):
            verify_checkpoint(path)

    def test_missing_manifest_means_never_written(self, tmp_path):
        model, *_ = make_trained()
        path = save_training_checkpoint(tmp_path, 5, model)
        manifest_path_for(path).unlink()
        with pytest.raises(CheckpointError, match="manifest"):
            verify_checkpoint(path)
        assert latest_checkpoint(tmp_path) is None

    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        model, optimizer, rng = make_trained()
        save_training_checkpoint(tmp_path, 10, model, optimizer, rng=rng)
        newest = save_training_checkpoint(tmp_path, 20, model, optimizer,
                                          rng=rng)
        corrupt_file(newest)
        assert latest_checkpoint(tmp_path).step == 10
        state = load_training_checkpoint(tmp_path, make_model(), rng=rng)
        assert state.step == 10

    def test_truncated_latest_falls_back_to_previous(self, tmp_path):
        model, optimizer, rng = make_trained()
        save_training_checkpoint(tmp_path, 10, model, optimizer, rng=rng)
        newest = save_training_checkpoint(tmp_path, 20, model, optimizer,
                                          rng=rng)
        truncate_file(newest, keep_bytes=100)
        state = load_training_checkpoint(tmp_path, make_model(), rng=rng)
        assert state.step == 10

    def test_all_snapshots_corrupt_raises(self, tmp_path):
        model, *_ = make_trained()
        for step in (1, 2):
            corrupt_file(save_training_checkpoint(tmp_path, step, model))
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            load_training_checkpoint(tmp_path, make_model())

    def test_single_file_source_has_no_fallback(self, tmp_path):
        model, *_ = make_trained()
        save_training_checkpoint(tmp_path, 10, model)
        newest = save_training_checkpoint(tmp_path, 20, model)
        corrupt_file(newest)
        with pytest.raises(CheckpointError):
            load_training_checkpoint(newest, make_model())


class TestFaultInjection:
    def test_transient_write_errors_are_retried_with_backoff(self, tmp_path):
        model, *_ = make_trained()
        sleeps = []
        with inject("checkpoint.write", times=2) as fault:
            path = save_training_checkpoint(
                tmp_path, 1, model, retries=3, backoff=0.01,
                sleep=sleeps.append)
        assert fault.hits == 2
        assert sleeps == [0.01, 0.02]  # exponential backoff
        verify_checkpoint(path)  # the eventual write is a valid snapshot

    def test_retry_exhaustion_raises_and_leaves_no_tmp(self, tmp_path):
        model, *_ = make_trained()
        with inject("checkpoint.write", times=-1):
            with pytest.raises(OSError, match="injected"):
                save_training_checkpoint(tmp_path, 1, model, retries=2,
                                         backoff=0.0, sleep=lambda _: None)
        assert list(tmp_path.iterdir()) == []  # no *.tmp litter, no snapshot

    def test_crash_before_manifest_leaves_uncommitted_snapshot(self, tmp_path):
        model, *_ = make_trained()
        save_training_checkpoint(tmp_path, 1, model)
        with inject("checkpoint.manifest", times=-1):
            with pytest.raises(OSError):
                save_training_checkpoint(tmp_path, 2, model, retries=0)
        # The step-2 archive may exist but has no manifest => not a
        # snapshot; resume uses step 1.
        assert latest_checkpoint(tmp_path).step == 1

    def test_crash_at_replace_keeps_old_snapshot_intact(self, tmp_path):
        model, *_ = make_trained()
        path = save_training_checkpoint(tmp_path, 1, model)
        with inject("checkpoint.replace", times=-1):
            with pytest.raises(OSError):
                save_training_checkpoint(tmp_path, 1, model, retries=0)
        verify_checkpoint(path)  # old step-1 snapshot untouched


class TestModelOnlyCheckpoints:
    def test_returned_path_is_the_written_path(self, tmp_path):
        # Regression: the old code computed the return path with a
        # different rule than np.savez's filename munging, so
        # save_checkpoint("model.ckpt") returned a path that did not
        # exist ("model.npz" vs the actual "model.ckpt.npz").
        model = make_model()
        for stem in ("model.ckpt", "model", "model.npz", "a.b.c"):
            saved = save_checkpoint(tmp_path / stem, model)
            assert saved.exists(), stem
            assert saved.name.endswith(".npz")
            assert load_checkpoint(saved, make_model(seed=5)) is None

    def test_config_round_trips(self, tmp_path):
        model = make_model()
        path = save_checkpoint(tmp_path / "m", model, config={"layers": [3, 8, 3]})
        model2 = make_model(seed=4)
        config = load_checkpoint(path, model2)
        assert config == {"layers": [3, 8, 3]}
        for name, value in model.state_dict().items():
            assert np.array_equal(value, model2.state_dict()[name])

    def test_load_verifies_manifest_by_default(self, tmp_path):
        model = make_model()
        path = save_checkpoint(tmp_path / "m", model)
        corrupt_file(path)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, make_model())

    def test_strict_load_rejects_mismatched_architecture(self, tmp_path):
        path = save_checkpoint(tmp_path / "m", make_model())
        other = MLP([3, 8, 8, 3], np.random.default_rng(0))
        with pytest.raises(KeyError):
            load_checkpoint(path, other)

    def test_manifest_is_readable_provenance(self, tmp_path):
        path = save_checkpoint(tmp_path / "m", make_model())
        manifest = json.loads(manifest_path_for(path).read_text())
        assert manifest["kind"] == "model"
        assert "git_sha" in manifest and "created_at" in manifest
