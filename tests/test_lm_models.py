"""Unit tests for the §5 simpler language models."""

import numpy as np
import pytest

from repro.lm import (
    FFNLM,
    LSTMLM,
    RNNLM,
    InterpolatedNGramLM,
    NGramLM,
    UnigramLM,
    bits_per_token,
    make_windows,
)
from repro.nn import Adam


@pytest.fixture
def markov_stream():
    """0 -> 1 -> 2 -> 0 cycle with 5% noise over vocab 5."""
    rng = np.random.default_rng(0)
    tokens, state = [], 0
    for _ in range(3000):
        state = (state + 1) % 3 if rng.random() < 0.95 else int(rng.integers(0, 5))
        tokens.append(state)
    return np.array(tokens)


class TestUnigram:
    def test_probs_match_frequencies(self):
        lm = UnigramLM(3, add_k=0.0).fit(np.array([0, 0, 1]))
        assert np.allclose(lm.probs, [2 / 3, 1 / 3, 0.0])

    def test_smoothing_avoids_zero(self):
        lm = UnigramLM(3, add_k=1.0).fit(np.array([0, 0, 1]))
        assert (lm.probs > 0).all()
        assert np.isclose(lm.probs.sum(), 1.0)

    def test_context_is_ignored(self):
        lm = UnigramLM(3).fit(np.array([0, 1, 2]))
        a = lm.next_token_logprobs(np.array([0]))
        b = lm.next_token_logprobs(np.array([2, 1]))
        assert np.array_equal(a, b)

    def test_perplexity_uniform_is_vocab_size(self):
        lm = UnigramLM(4, add_k=1.0).fit(np.array([0, 1, 2, 3]))
        ids = np.array([0, 1, 2, 3] * 10)
        assert lm.perplexity(ids) == pytest.approx(4.0)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            UnigramLM(3).next_token_logprobs(np.array([0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            UnigramLM(0)
        with pytest.raises(ValueError):
            UnigramLM(3, add_k=-1)
        with pytest.raises(ValueError):
            UnigramLM(3).fit(np.array([5]))


class TestNGram:
    def test_bigram_learns_transitions(self, markov_stream):
        lm = NGramLM(5, order=2, add_k=0.1).fit(markov_stream)
        probs = np.exp(lm.next_token_logprobs(np.array([0])))
        assert probs[1] > 0.8  # 0 -> 1 dominates

    def test_eq6_maximum_likelihood(self):
        # stream: a b a b a c  -> P(b | a) = 2/3, P(c | a) = 1/3
        lm = NGramLM(3, order=2, add_k=0.0).fit(np.array([0, 1, 0, 1, 0, 2]))
        probs = lm.conditional_probs([0])
        assert probs[1] == pytest.approx(2 / 3)
        assert probs[2] == pytest.approx(1 / 3)

    def test_unseen_context_falls_back_to_uniform(self):
        lm = NGramLM(4, order=3, add_k=0.0).fit(np.array([0, 1, 2]))
        lp = lm.next_token_logprobs(np.array([3, 3]))
        assert np.allclose(np.exp(lp), 0.25)

    def test_higher_order_beats_lower_on_markov(self, markov_stream):
        train, test = markov_stream[:2500], markov_stream[2500:]
        uni = UnigramLM(5).fit(train)
        bi = NGramLM(5, order=2).fit(train)
        assert bi.perplexity(test) < uni.perplexity(test)

    def test_context_count_growth(self, markov_stream):
        bi = NGramLM(5, order=2).fit(markov_stream)
        tri = NGramLM(5, order=3).fit(markov_stream)
        assert tri.num_contexts() >= bi.num_contexts()

    def test_validation(self):
        with pytest.raises(ValueError):
            NGramLM(5, order=0)
        with pytest.raises(ValueError):
            NGramLM(5, order=2, add_k=-0.1)


class TestInterpolated:
    def test_mixes_orders(self, markov_stream):
        train, test = markov_stream[:2500], markov_stream[2500:]
        lm = InterpolatedNGramLM(5, order=3).fit(train)
        assert lm.perplexity(test) < UnigramLM(5).fit(train).perplexity(test)

    def test_distribution_normalised(self, markov_stream):
        lm = InterpolatedNGramLM(5, order=3).fit(markov_stream)
        probs = np.exp(lm.next_token_logprobs(np.array([0, 1])))
        assert np.isclose(probs.sum(), 1.0)

    def test_custom_lambdas_validated(self):
        with pytest.raises(ValueError):
            InterpolatedNGramLM(5, order=2, lambdas=[0.5, 0.6])
        lm = InterpolatedNGramLM(5, order=2, lambdas=[0.3, 0.7])
        assert np.allclose(lm.lambdas, [0.3, 0.7])

    def test_short_context_skips_high_orders(self, markov_stream):
        lm = InterpolatedNGramLM(5, order=4).fit(markov_stream)
        probs = np.exp(lm.next_token_logprobs(np.array([0])))
        assert np.isclose(probs.sum(), 1.0)


class TestMakeWindows:
    def test_window_alignment(self):
        ctx, tgt = make_windows(np.arange(10), window=3)
        assert ctx.shape == (7, 3)
        assert np.array_equal(ctx[0], [0, 1, 2]) and tgt[0] == 3
        assert np.array_equal(ctx[-1], [6, 7, 8]) and tgt[-1] == 9

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            make_windows(np.arange(3), window=3)


class TestNeuralLMs:
    def test_ffn_learns_markov(self, markov_stream):
        train, test = markov_stream[:2500], markov_stream[2500:]
        lm = FFNLM(5, window=2, embed_dim=8, hidden_dim=32, rng=0)
        ctx, tgt = make_windows(train, 2)
        opt = Adam(lm.parameters(), lr=1e-2)
        rng = np.random.default_rng(0)
        for _ in range(150):
            idx = rng.integers(0, len(tgt), size=64)
            lm.zero_grad()
            lm.loss(ctx[idx], tgt[idx]).backward()
            opt.step()
        assert lm.perplexity(test[:300]) < 2.0

    def test_ffn_short_context_padding(self):
        lm = FFNLM(5, window=4, rng=0)
        lp = lm.next_token_logprobs(np.array([1]))
        assert np.isclose(np.exp(lp).sum(), 1.0)

    def test_ffn_window_validation(self):
        with pytest.raises(ValueError):
            FFNLM(5, window=0)
        lm = FFNLM(5, window=2, rng=0)
        with pytest.raises(ValueError):
            lm.forward(np.zeros((3, 5), dtype=int))

    @pytest.mark.parametrize("cls", [RNNLM, LSTMLM])
    def test_recurrent_learns_markov(self, cls, markov_stream):
        from repro.data import sample_batch

        train, test = markov_stream[:2500], markov_stream[2500:]
        lm = cls(5, embed_dim=8, hidden_dim=16, rng=0)
        opt = Adam(lm.parameters(), lr=1e-2)
        rng = np.random.default_rng(0)
        for _ in range(80):
            x, y = sample_batch(train, 8, 16, rng)
            lm.zero_grad()
            lm.loss(x, y).backward()
            opt.step()
        assert lm.perplexity(test[:200]) < 2.5

    @pytest.mark.parametrize("cls", [RNNLM, LSTMLM])
    def test_recurrent_logits_shape(self, cls):
        lm = cls(7, embed_dim=4, hidden_dim=8, rng=0)
        out = lm.forward(np.zeros((3, 5), dtype=int))
        assert out.shape == (3, 5, 7)

    def test_rnn_sequential_steps_grow_with_length(self):
        lm = RNNLM(5, rng=0)
        assert lm.sequential_steps(64) == 64 > lm.sequential_steps(8)

    def test_generate_interface(self, markov_stream):
        lm = NGramLM(5, order=2).fit(markov_stream)
        out = lm.generate([0], 10, rng=np.random.default_rng(0))
        assert len(out) == 11
        assert all(0 <= t < 5 for t in out)

    def test_generate_stop_token(self, markov_stream):
        lm = NGramLM(5, order=2).fit(markov_stream)
        out = lm.generate([0], 50, greedy=True, stop_token=1)
        assert out[-1] == 1 and len(out) <= 51


class TestSharedInterface:
    def test_sequence_logprob_sums_conditionals(self, markov_stream):
        lm = UnigramLM(5).fit(markov_stream)
        ids = np.array([0, 1, 2])
        expected = sum(lm.next_token_logprobs(ids[:i])[ids[i]] for i in range(3))
        assert lm.sequence_logprob(ids) == pytest.approx(expected)

    def test_cross_entropy_empty_raises(self, markov_stream):
        lm = UnigramLM(5).fit(markov_stream)
        with pytest.raises(ValueError):
            lm.cross_entropy(np.array([], dtype=int))

    def test_bits_per_token(self):
        assert bits_per_token(np.log(2.0)) == pytest.approx(1.0)


class TestKneserNey:
    def test_distribution_normalised(self, markov_stream):
        from repro.lm import KneserNeyLM

        lm = KneserNeyLM(5, order=3).fit(markov_stream)
        for context in ([], [0], [0, 1], markov_stream[:5]):
            probs = np.exp(lm.next_token_logprobs(np.array(context, dtype=np.int64)))
            assert np.isclose(probs.sum(), 1.0)
            assert (probs > 0).all()  # back-off guarantees support everywhere

    def test_beats_addk_on_sparse_data(self):
        """With many contexts seen once, KN's continuation counts should
        beat add-k smoothing (the standard empirical result)."""
        from repro.lm import KneserNeyLM

        rng = np.random.default_rng(0)
        # structured stream over a larger vocab so trigrams are sparse
        vocab = 30
        stream = []
        state = 0
        for _ in range(4000):
            state = (state + int(rng.integers(1, 4))) % vocab
            stream.append(state)
        stream = np.array(stream)
        train, test = stream[:3500], stream[3500:]
        kn = KneserNeyLM(vocab, order=3).fit(train)
        addk = NGramLM(vocab, order=3, add_k=1.0).fit(train)
        assert kn.perplexity(test) < addk.perplexity(test)

    def test_frequency_vs_continuation(self):
        """The 'San Francisco' property: a word frequent only in one
        context gets a small continuation back-off score."""
        from repro.lm import KneserNeyLM

        # token 3 ("francisco") only ever follows 2 ("san"); token 1
        # follows many different tokens.  Backing off from a context that
        # was NEVER seen (token 7), the continuation-count unigram must
        # prefer 1 over 3 even though 3 is more frequent overall.
        stream = []
        for lead in (0, 4, 5, 6):
            stream += [lead, 1] * 3  # "1" follows 4 distinct words
        stream += [2, 3] * 20        # "3" more frequent overall, only after "2"
        lm = KneserNeyLM(8, order=2).fit(np.array(stream))
        unseen_probs = np.exp(lm.next_token_logprobs(np.array([7])))
        assert unseen_probs[1] > unseen_probs[3]
        # raw frequency would have said the opposite
        counts = np.bincount(stream, minlength=8)
        assert counts[3] > counts[1]

    def test_validation(self):
        from repro.lm import KneserNeyLM

        with pytest.raises(ValueError):
            KneserNeyLM(5, order=0)
        with pytest.raises(ValueError):
            KneserNeyLM(5, discount=1.5)
        with pytest.raises(RuntimeError):
            KneserNeyLM(5).next_token_logprobs(np.array([0]))
