"""Tier-1 wiring for the benchmark regression gate.

``benchmarks/check_regression.py`` diffs a fresh ``BENCH_*.json``
against a committed baseline (benchmarks/baselines/) and fails on a >20% throughput drop.
These tests run it as a subprocess the same way CI would: an identical
record passes, a degraded record fails with a named metric, and the
mixed-mode guards refuse apples-to-oranges comparisons.  Direction
matters: throughput and efficiency ratios (speedup, saving_ratio,
hit_rate) fail on a drop, KV bytes-per-request fails on growth.  The
committed serving and inference baselines are exercised directly so the
gate and the checked-in records can never drift apart silently.
"""

import json
import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO, "benchmarks")
BASELINE = os.path.join(BENCH_DIR, "baselines", "serving.json")


def run_checker(*argv):
    return subprocess.run(
        [sys.executable, "check_regression.py", *argv],
        cwd=BENCH_DIR, capture_output=True, text=True, timeout=60)


def sample_record():
    return {
        "bench": "serving",
        "smoke": False,
        "phases": {
            "poisson": {"tokens_per_sec": 400.0, "ttft_p50_s": 0.006},
            "closed_loop": {"tokens_per_sec": 2000.0},
        },
        "provenance": {"tokens_per_sec": 999.0},  # must be ignored
    }


def write(path, record):
    path.write_text(json.dumps(record))
    return str(path)


class TestGate:
    def test_identical_records_pass(self, tmp_path):
        base = write(tmp_path / "base.json", sample_record())
        proc = run_checker(base, base)
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_regressed_throughput_fails(self, tmp_path):
        base = write(tmp_path / "base.json", sample_record())
        degraded = sample_record()
        degraded["phases"]["closed_loop"]["tokens_per_sec"] *= 0.5
        fresh = write(tmp_path / "fresh.json", degraded)
        proc = run_checker(base, fresh)
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stderr
        assert "closed_loop/tokens_per_sec" in proc.stderr
        # the untouched metric is not reported as a failure
        assert "poisson" not in proc.stderr

    def test_small_drop_within_threshold_passes(self, tmp_path):
        base = write(tmp_path / "base.json", sample_record())
        wobbled = sample_record()
        wobbled["phases"]["poisson"]["tokens_per_sec"] *= 0.9
        fresh = write(tmp_path / "fresh.json", wobbled)
        assert run_checker(base, fresh).returncode == 0

    def test_improvement_passes(self, tmp_path):
        base = write(tmp_path / "base.json", sample_record())
        better = sample_record()
        for phase in better["phases"].values():
            phase["tokens_per_sec"] *= 3.0
        fresh = write(tmp_path / "fresh.json", better)
        assert run_checker(base, fresh).returncode == 0

    def test_dropped_metric_fails(self, tmp_path):
        base = write(tmp_path / "base.json", sample_record())
        partial = sample_record()
        del partial["phases"]["closed_loop"]
        fresh = write(tmp_path / "fresh.json", partial)
        proc = run_checker(base, fresh)
        assert proc.returncode == 1
        assert "missing from" in proc.stderr

    def test_threshold_is_configurable(self, tmp_path):
        base = write(tmp_path / "base.json", sample_record())
        wobbled = sample_record()
        wobbled["phases"]["poisson"]["tokens_per_sec"] *= 0.9
        fresh = write(tmp_path / "fresh.json", wobbled)
        assert run_checker(base, fresh, "--threshold", "0.05").returncode == 1


class TestDirectionAwareGate:
    """PR 8/9 metrics: ratios gate like throughput, bytes gate inverted."""

    @staticmethod
    def paged_record():
        return {
            "bench": "inference_throughput",
            "smoke": False,
            "memory": {
                "memory_saving_ratio": 2.0,
                "paged_kv_bytes_per_request": 320000.0,
                "dense_kv_bytes_per_request": 640000.0,
            },
            "prefix": {"ttft_speedup": 10.0, "prefix_hit_rate": 0.83},
            "speculative": {"accepted_tokens_per_step": 2.5,
                            "acceptance_rate": 0.7,
                            "spec_tokens_per_sec": 1800.0,
                            "spec_speedup": 2.0},
        }

    def test_saving_ratio_drop_fails(self, tmp_path):
        base = write(tmp_path / "base.json", self.paged_record())
        worse = self.paged_record()
        worse["memory"]["memory_saving_ratio"] = 1.2
        fresh = write(tmp_path / "fresh.json", worse)
        proc = run_checker(base, fresh)
        assert proc.returncode == 1
        assert "memory_saving_ratio" in proc.stderr

    def test_ttft_speedup_drop_fails(self, tmp_path):
        base = write(tmp_path / "base.json", self.paged_record())
        worse = self.paged_record()
        worse["prefix"]["ttft_speedup"] = 2.0
        fresh = write(tmp_path / "fresh.json", worse)
        proc = run_checker(base, fresh)
        assert proc.returncode == 1
        assert "ttft_speedup" in proc.stderr

    def test_accepted_tokens_per_step_drop_fails(self, tmp_path):
        """PR 9: a draft-quality regression (fewer accepted tokens per
        verify round) must fail the gate even if tokens/sec holds up."""
        base = write(tmp_path / "base.json", self.paged_record())
        worse = self.paged_record()
        worse["speculative"]["accepted_tokens_per_step"] = 1.2
        fresh = write(tmp_path / "fresh.json", worse)
        proc = run_checker(base, fresh)
        assert proc.returncode == 1
        assert "accepted_tokens_per_step" in proc.stderr

    def test_spec_tokens_per_sec_drop_fails(self, tmp_path):
        base = write(tmp_path / "base.json", self.paged_record())
        worse = self.paged_record()
        worse["speculative"]["spec_tokens_per_sec"] = 900.0
        fresh = write(tmp_path / "fresh.json", worse)
        proc = run_checker(base, fresh)
        assert proc.returncode == 1
        assert "spec_tokens_per_sec" in proc.stderr

    def test_spec_improvement_passes(self, tmp_path):
        base = write(tmp_path / "base.json", self.paged_record())
        better = self.paged_record()
        better["speculative"]["accepted_tokens_per_step"] = 4.0
        better["speculative"]["acceptance_rate"] = 0.95
        fresh = write(tmp_path / "fresh.json", better)
        assert run_checker(base, fresh).returncode == 0

    def test_bytes_per_request_growth_fails(self, tmp_path):
        base = write(tmp_path / "base.json", self.paged_record())
        bloated = self.paged_record()
        bloated["memory"]["paged_kv_bytes_per_request"] *= 1.5
        fresh = write(tmp_path / "fresh.json", bloated)
        proc = run_checker(base, fresh)
        assert proc.returncode == 1
        assert "paged_kv_bytes_per_request" in proc.stderr
        assert "growth" in proc.stderr

    def test_bytes_per_request_shrink_passes(self, tmp_path):
        base = write(tmp_path / "base.json", self.paged_record())
        leaner = self.paged_record()
        leaner["memory"]["paged_kv_bytes_per_request"] *= 0.5
        fresh = write(tmp_path / "fresh.json", leaner)
        assert run_checker(base, fresh).returncode == 0

    def test_small_growth_within_threshold_passes(self, tmp_path):
        base = write(tmp_path / "base.json", self.paged_record())
        wobbled = self.paged_record()
        wobbled["memory"]["paged_kv_bytes_per_request"] *= 1.1
        fresh = write(tmp_path / "fresh.json", wobbled)
        assert run_checker(base, fresh).returncode == 0


class TestDtypeGate:
    """PR 10 dtype-policy metrics: the float32 speedup and KV-bytes wins
    gate like any other ratio; peak pool bytes gate inverted."""

    @staticmethod
    def dtype_record():
        return {
            "bench": "inference_throughput",
            "smoke": False,
            "dtype": {
                "float64": {"tokens_per_sec": 6000.0,
                            "kv_peak_bytes": 262144.0},
                "float32": {"tokens_per_sec": 9000.0,
                            "kv_peak_bytes": 131072.0},
                "dtype_speedup_f32": 1.5,
                "kv_bytes_saving_ratio": 2.0,
            },
        }

    def test_dtype_speedup_drop_fails(self, tmp_path):
        base = write(tmp_path / "base.json", self.dtype_record())
        worse = self.dtype_record()
        worse["dtype"]["dtype_speedup_f32"] = 1.0
        fresh = write(tmp_path / "fresh.json", worse)
        proc = run_checker(base, fresh)
        assert proc.returncode == 1
        assert "dtype_speedup_f32" in proc.stderr

    def test_kv_saving_ratio_drop_fails(self, tmp_path):
        base = write(tmp_path / "base.json", self.dtype_record())
        worse = self.dtype_record()
        worse["dtype"]["kv_bytes_saving_ratio"] = 1.0
        fresh = write(tmp_path / "fresh.json", worse)
        proc = run_checker(base, fresh)
        assert proc.returncode == 1
        assert "kv_bytes_saving_ratio" in proc.stderr

    def test_kv_peak_bytes_growth_fails(self, tmp_path):
        base = write(tmp_path / "base.json", self.dtype_record())
        bloated = self.dtype_record()
        bloated["dtype"]["float32"]["kv_peak_bytes"] *= 2.0
        fresh = write(tmp_path / "fresh.json", bloated)
        proc = run_checker(base, fresh)
        assert proc.returncode == 1
        assert "float32/kv_peak_bytes" in proc.stderr
        assert "growth" in proc.stderr

    def test_kv_peak_bytes_shrink_passes(self, tmp_path):
        base = write(tmp_path / "base.json", self.dtype_record())
        leaner = self.dtype_record()
        leaner["dtype"]["float32"]["kv_peak_bytes"] *= 0.5
        fresh = write(tmp_path / "fresh.json", leaner)
        assert run_checker(base, fresh).returncode == 0


class TestMixedModeGuards:
    def test_different_bench_names_refused(self, tmp_path):
        base = write(tmp_path / "base.json", sample_record())
        other = sample_record()
        other["bench"] = "training"
        fresh = write(tmp_path / "fresh.json", other)
        proc = run_checker(base, fresh)
        assert proc.returncode == 2
        assert "refusing" in proc.stderr

    def test_smoke_vs_full_refused_unless_allowed(self, tmp_path):
        base = write(tmp_path / "base.json", sample_record())
        smoke = sample_record()
        smoke["smoke"] = True
        fresh = write(tmp_path / "fresh.json", smoke)
        assert run_checker(base, fresh).returncode == 2
        assert run_checker(base, fresh, "--allow-mixed").returncode == 0


class TestCommittedBaseline:
    def test_committed_serving_baseline_gates_itself(self):
        assert os.path.exists(BASELINE), \
            "benchmarks/baselines/serving.json baseline is missing"
        proc = run_checker(BASELINE, BASELINE)
        assert proc.returncode == 0, proc.stderr
        record = json.loads(open(BASELINE).read())
        assert record["bench"] == "serving"
        # the baseline carries the metrics the gate watches
        assert "tokens_per_sec" in json.dumps(record)

    def test_committed_inference_baseline_gates_itself(self):
        baseline = os.path.join(BENCH_DIR, "baselines", "inference.json")
        assert os.path.exists(baseline), \
            "benchmarks/baselines/inference.json baseline is missing"
        proc = run_checker(baseline, baseline)
        assert proc.returncode == 0, proc.stderr
        record = json.loads(open(baseline).read())
        assert record["bench"] == "inference_throughput"
        # PR 8 + PR 9 gated leaves are present in the committed record
        assert "memory_saving_ratio" in json.dumps(record)
        assert "ttft_speedup" in json.dumps(record)
        assert "accepted_tokens_per_step" in json.dumps(record)
        assert "spec_tokens_per_sec" in json.dumps(record)
        # PR 10: float32 decode + KV-bytes wins are gated too
        assert record["dtype"]["kv_bytes_saving_ratio"] == 2.0

    def test_committed_training_baseline_gates_itself(self):
        baseline = os.path.join(BENCH_DIR, "baselines", "training.json")
        assert os.path.exists(baseline), \
            "benchmarks/baselines/training.json baseline is missing"
        proc = run_checker(baseline, baseline)
        assert proc.returncode == 0, proc.stderr
        record = json.loads(open(baseline).read())
        assert record["bench"] == "training_throughput"
        # PR 10 acceptance: the committed record proves the float32 wins
        assert record["speedup_fused"] >= 1.5
        assert record["dtype"]["dtype_speedup_f32"] >= 1.5
