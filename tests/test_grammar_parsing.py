"""Tests for CNF conversion, CYK parsing, Inside probabilities, and the
Figure-3 arithmetic grammar."""

import math

import numpy as np
import pytest

from repro.grammar import (
    PCFG,
    Rule,
    arithmetic_cnf,
    arithmetic_pcfg,
    evaluate_expression,
    evaluate_tree,
    inside_logprob,
    parse_expression,
    recognize,
    to_cnf,
    viterbi_parse,
)


class TestCNF:
    def test_output_is_cnf(self):
        g = PCFG.from_text("S -> A b C [1.0]\nA -> a [1.0]\nC -> c [1.0]")
        cnf = to_cnf(g)
        assert cnf.cfg.is_cnf()

    def test_string_probability_preserved(self):
        """CNF conversion must preserve the distribution over strings."""
        g = PCFG.from_text(
            "S -> A B [0.6]\nS -> A [0.4]\n"
            "A -> a [1.0]\nB -> b b c [1.0]"
        )
        cnf = to_cnf(g)
        assert inside_logprob(cnf, ["a"]) == pytest.approx(math.log(0.4))
        assert inside_logprob(cnf, ["a", "b", "b", "c"]) == pytest.approx(math.log(0.6))

    def test_unit_chain_elimination_preserves_probability(self):
        g = PCFG.from_text(
            "S -> A [0.5]\nS -> b [0.5]\nA -> B [0.5]\nA -> a [0.5]\nB -> c [1.0]"
        )
        cnf = to_cnf(g)
        # P(c) = 0.5 * 0.5 * 1.0
        assert inside_logprob(cnf, ["c"]) == pytest.approx(math.log(0.25))
        assert inside_logprob(cnf, ["a"]) == pytest.approx(math.log(0.25))
        assert inside_logprob(cnf, ["b"]) == pytest.approx(math.log(0.5))

    def test_unit_cycle_with_full_mass_rejected(self):
        g = PCFG.from_text("S -> A [1.0]\nA -> S [1.0]")
        with pytest.raises(ValueError):
            to_cnf(g)

    def test_convergent_unit_cycle_is_handled(self):
        """A cycle with mass < 1 is a geometric series the closure sums."""
        g = PCFG.from_text("S -> A [1.0]\nA -> S [0.5]\nA -> a [0.5]")
        cnf = to_cnf(g)
        # P(a) = 0.5 + 0.5^2 * 0.5 + ... = 0.5 / (1 - 0.5) = 1.0
        assert inside_logprob(cnf, ["a"]) == pytest.approx(0.0)

    def test_long_rule_binarized(self):
        g = PCFG.from_text("S -> a b c d e [1.0]")
        cnf = to_cnf(g)
        assert recognize(cnf, list("abcde"))
        assert not recognize(cnf, list("abcd"))


class TestCYK:
    @pytest.fixture
    def balanced(self):
        # Dyck-like language: S -> ( S ) | ( )
        return to_cnf(PCFG.from_text("S -> ( S ) [0.4]\nS -> ( ) [0.6]"))

    def test_recognize(self, balanced):
        assert recognize(balanced, list("()"))
        assert recognize(balanced, list("(())"))
        assert not recognize(balanced, list("())"))
        assert not recognize(balanced, list(")("))
        assert not recognize(balanced, [])

    def test_cyk_requires_cnf(self):
        g = PCFG.from_text("S -> a b c [1.0]")
        with pytest.raises(ValueError):
            recognize(g, list("abc"))

    def test_inside_logprob_matches_derivation(self, balanced):
        # "(())" has the unique derivation S -> ( S ), S -> ( ): 0.4 * 0.6
        assert inside_logprob(balanced, list("(())")) == pytest.approx(
            math.log(0.4 * 0.6)
        )

    def test_inside_logprob_out_of_language(self, balanced):
        assert inside_logprob(balanced, list(")(")) == -math.inf
        assert inside_logprob(balanced, []) == -math.inf

    def test_inside_sums_over_ambiguity(self):
        # Two derivations of "a a": S->A A (A->a) and S->a a via B... build
        # an ambiguous grammar explicitly.
        g = PCFG(
            {
                Rule("S", ("A", "A")): 0.5,
                Rule("S", ("B", "A")): 0.5,
                Rule("A", ("a",)): 1.0,
                Rule("B", ("a",)): 1.0,
            },
            "S",
        )
        assert inside_logprob(g, ["a", "a"]) == pytest.approx(math.log(1.0))

    def test_viterbi_picks_most_probable_derivation(self):
        g = PCFG(
            {
                Rule("S", ("A", "A")): 0.9,
                Rule("S", ("B", "A")): 0.1,
                Rule("A", ("a",)): 1.0,
                Rule("B", ("a",)): 1.0,
            },
            "S",
        )
        result = viterbi_parse(g, ["a", "a"], unbinarize=False)
        assert result.tree.children[0].label == "A"
        assert result.logprob == pytest.approx(math.log(0.9))

    def test_viterbi_none_when_ungrammatical(self, balanced):
        assert viterbi_parse(balanced, list("((")) is None
        assert viterbi_parse(balanced, []) is None

    def test_viterbi_tree_yields_input(self, balanced):
        tokens = list("((()))")
        result = viterbi_parse(balanced, tokens)
        assert result.tree.leaves() == tokens


class TestArithmeticGrammar:
    def test_precedence_multiplication_binds_tighter(self):
        """The appendix exercise: in y+1*x, '*' groups before '+'."""
        result = parse_expression("y+1*x")
        spans = result.tree.spans()
        labeled = {(s, e) for _label, s, e in spans}
        assert (2, 5) in labeled  # "1*x" is a constituent
        assert (0, 3) not in labeled  # "y+1" is NOT a constituent

    def test_evaluation_matches_python(self):
        env = {"x": 4, "y": 7, "z": 2}
        for expr in ["y+1*x", "2*3+4", "2+3*4", "x*(y+1)", "((8))", "5",
                     "z*z*z", "1+2+3", "2*3*4"]:
            assert evaluate_expression(expr, env) == eval(expr, {}, env)

    def test_ungrammatical_rejected(self):
        cnf = arithmetic_cnf()
        for bad in ["+3", "3+", "((3)", "3**4", ""]:
            assert not recognize(cnf, [c for c in bad])

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            evaluate_expression("x+1", env={})

    def test_evaluate_expression_rejects_nonsentence(self):
        with pytest.raises(ValueError):
            evaluate_expression("3+", {})

    def test_sampled_expressions_parse_and_evaluate(self):
        g = arithmetic_pcfg()
        cnf = arithmetic_cnf()
        rng = np.random.default_rng(0)
        env = {"x": 2, "y": 3, "z": 5}
        for _ in range(15):
            tokens = g.sample_sentence(rng, max_depth=25)
            result = viterbi_parse(cnf, tokens)
            assert result is not None
            value = evaluate_tree(result.tree, env)
            assert value == eval("".join(tokens), {}, env)

    def test_evaluate_tree_bad_shape_raises(self):
        from repro.grammar import Tree

        with pytest.raises(ValueError):
            evaluate_tree(Tree("X", [Tree("a"), Tree("b")]))
