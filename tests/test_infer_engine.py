"""Equivalence suite for the batched inference engine.

The contract under test: ``forward``-based :meth:`LanguageModel.generate`,
KV-cached :meth:`TransformerLM.generate_fast`, and the batched
:class:`GenerationEngine` all produce identical token streams for the same
RNG seed — across greedy/temperature/top-k/top-p sampling and
windowed-attention configs — and the engine is bit-identical to
``generate_fast`` at batch size 1 by construction (shared decode path,
shared RNG consumption order).
"""

import numpy as np
import pytest

from repro.core import TransformerConfig, TransformerLM
from repro.infer import GenerationEngine

SAMPLING_CONFIGS = [
    {"greedy": True},
    {"temperature": 1.0},
    {"temperature": 1.3, "top_k": 5},
    {"temperature": 0.8, "top_p": 0.9},
    {"temperature": 1.1, "top_k": 6, "top_p": 0.95},
]

ARCH_CONFIGS = [
    {},
    {"attention_window": 4},
    {"pre_layernorm": False, "positional": "sinusoidal"},
    {"use_residual": False, "positional": "none"},
]


def tiny_model(**kwargs):
    cfg = TransformerConfig(vocab_size=11, max_seq_len=48, d_model=16,
                            num_heads=2, num_layers=2, **kwargs)
    return TransformerLM(cfg, rng=0)


class TestThreeWayEquivalence:
    @pytest.mark.parametrize("arch", ARCH_CONFIGS,
                             ids=["dense", "windowed", "postln-sin", "nores-nopos"])
    @pytest.mark.parametrize("sampling", SAMPLING_CONFIGS,
                             ids=["greedy", "t1.0", "topk", "topp", "topk+topp"])
    def test_generate_generate_fast_engine_agree(self, arch, sampling):
        model = tiny_model(**arch)
        prompt = [1, 2, 3]
        slow = model.generate(prompt, 12, rng=np.random.default_rng(9), **sampling)
        fast = model.generate_fast(prompt, 12, rng=np.random.default_rng(9), **sampling)
        engine = GenerationEngine(model, batch_size=1,
                                  rng=np.random.default_rng(9), **sampling)
        batched = engine.generate([prompt], 12)[0]
        assert slow == fast == batched


class TestEngineMatchesGenerateFast:
    def test_batch_one_bit_identical_stochastic(self):
        model = tiny_model()
        for seed in (0, 7, 123):
            ref = model.generate_fast([2, 4, 6], 20,
                                      rng=np.random.default_rng(seed),
                                      temperature=1.2, top_k=7)
            engine = GenerationEngine(model, batch_size=1,
                                      rng=np.random.default_rng(seed),
                                      temperature=1.2, top_k=7)
            assert engine.generate([[2, 4, 6]], 20)[0] == ref

    def test_batch_one_shared_rng_stream_across_requests(self):
        """One slot + one RNG: the engine must consume draws exactly like
        sequential generate_fast calls sharing that RNG."""
        model = tiny_model()
        prompts = [[1], [2, 3], [4, 5, 6]]
        rng = np.random.default_rng(42)
        refs = [model.generate_fast(p, 8, rng=rng, temperature=1.1) for p in prompts]
        engine = GenerationEngine(model, batch_size=1,
                                  rng=np.random.default_rng(42), temperature=1.1)
        assert engine.generate(prompts, 8) == refs

    def test_ragged_batch_greedy_matches_per_sequence(self):
        model = tiny_model()
        prompts = [[1, 2, 3], [0], [4, 5, 6, 7, 8, 0, 1], [2, 2], [9, 10]]
        engine = GenerationEngine(model, batch_size=5, greedy=True)
        outs = engine.generate(prompts, 15)
        refs = [model.generate_fast(p, 15, greedy=True) for p in prompts]
        assert outs == refs

    def test_ragged_windowed_batch_matches_per_sequence(self):
        model = tiny_model(attention_window=3)
        prompts = [[1, 2, 3, 4, 5], [0], [6, 7]]
        engine = GenerationEngine(model, batch_size=3, greedy=True)
        outs = engine.generate(prompts, 12)
        refs = [model.generate_fast(p, 12, greedy=True) for p in prompts]
        assert outs == refs


class TestContinuousBatching:
    def test_queue_longer_than_slot_pool(self):
        model = tiny_model()
        prompts = [[i % 11] for i in range(10)]
        engine = GenerationEngine(model, batch_size=3, greedy=True)
        outs = engine.generate(prompts, 9)
        refs = [model.generate_fast(p, 9, greedy=True) for p in prompts]
        assert outs == refs

    def test_independent_retirement_on_stop_token(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=4, greedy=True, stop_token=5)
        ids = [engine.submit([t], 20) for t in (1, 2, 3, 4)]
        results = engine.run()
        assert [r.request_id for r in results] == ids
        for r in results:
            ref = model.generate_fast([r.tokens[0]], 20, greedy=True, stop_token=5)
            assert r.tokens == ref
            if r.finish_reason == "stop_token":
                assert r.tokens[-1] == 5
            else:
                assert r.finish_reason == "length"
                assert len(r.completion) == 20

    def test_retired_slot_is_reused(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, greedy=True)
        engine.submit([1], 3)
        engine.submit([2], 18)
        engine.submit([3], 3)  # queued until a slot frees up
        engine.run()
        # request 1 retires after 3 steps and request 3 takes its slot while
        # request 2 (18 steps) is still decoding: 18 total model steps, not
        # the 18 + 3 = 21 a wait-for-drain scheduler would need.
        assert engine.total_steps == 18

    def test_per_request_stop_token_override(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, greedy=True, stop_token=5)
        a = engine.submit([1], 12)
        b = engine.submit([1], 12, stop_token=None)  # never stops early
        results = {r.request_id: r for r in engine.run()}
        assert results[a].tokens == model.generate_fast([1], 12, greedy=True,
                                                        stop_token=5)
        assert results[b].tokens == model.generate_fast([1], 12, greedy=True)

    def test_engine_batched_sampling_is_reproducible(self):
        model = tiny_model()
        runs = []
        for _ in range(2):
            engine = GenerationEngine(model, batch_size=4,
                                      rng=np.random.default_rng(17),
                                      temperature=1.2, top_p=0.9)
            runs.append(engine.generate([[1], [2], [3], [4], [5]], 10))
        assert runs[0] == runs[1]


class TestEngineValidation:
    def test_rejects_bad_requests(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, greedy=True)
        with pytest.raises(ValueError):
            engine.submit([], 5)
        with pytest.raises(ValueError):
            engine.submit([1], -1)
        with pytest.raises(ValueError):
            engine.submit([1] * 40, 20)  # exceeds model window
        with pytest.raises(ValueError):
            GenerationEngine(model, batch_size=0)

    def test_zero_new_tokens_returns_prompt(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, greedy=True)
        assert engine.generate([[1, 2]], 0) == [[1, 2]]

    def test_result_metadata(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=1, greedy=True)
        engine.submit([1, 2, 3], 6)
        (result,) = engine.run()
        assert result.prompt_len == 3
        assert result.completion == result.tokens[3:]
        assert len(result.completion) == 6
        assert result.steps == 3 + 6 - 1  # prefill + decode, sharing one step


class TestGenerateFastStopSemantics:
    """Satellite: generate_fast's stop-token return semantics must match
    LanguageModel.generate exactly, for the same seed."""

    def test_stop_token_parity_with_generate(self):
        model = tiny_model()
        for seed in range(5):
            for stop in (3, 5, None):
                slow = model.generate([1, 2], 18, rng=np.random.default_rng(seed),
                                      temperature=1.4, stop_token=stop)
                fast = model.generate_fast([1, 2], 18,
                                           rng=np.random.default_rng(seed),
                                           temperature=1.4, stop_token=stop)
                assert slow == fast

    def test_greedy_stop_token_included_once(self):
        model = tiny_model()
        out = model.generate_fast([1], 25, greedy=True, stop_token=5)
        ref = model.generate([1], 25, greedy=True, stop_token=5)
        assert out == ref
        if 5 in out[1:]:
            assert out.index(5, 1) == len(out) - 1
