"""Equivalence suite for the batched inference engine.

The contract under test: ``forward``-based :meth:`LanguageModel.generate`,
KV-cached :meth:`TransformerLM.generate_fast`, and the batched
:class:`GenerationEngine` all produce identical token streams for the same
RNG seed — across greedy/temperature/top-k/top-p sampling and
windowed-attention configs — and the engine is bit-identical to
``generate_fast`` at batch size 1 by construction (shared decode path,
shared RNG consumption order).

ISSUE 10: the three-way equivalence must hold under either dtype policy.
Sampling is pinned to float64 (logits are upcast on entry), so a float32
model's decode paths agree with each other exactly — the equivalence is
*within* a dtype, never across dtypes.
"""

import numpy as np
import pytest

from repro.core import TransformerConfig, TransformerLM
from repro.infer import GenerationEngine, SamplingParams
from repro.obs import Observability

SAMPLING_CONFIGS = [
    {"greedy": True},
    {"temperature": 1.0},
    {"temperature": 1.3, "top_k": 5},
    {"temperature": 0.8, "top_p": 0.9},
    {"temperature": 1.1, "top_k": 6, "top_p": 0.95},
]

ARCH_CONFIGS = [
    {},
    {"attention_window": 4},
    {"pre_layernorm": False, "positional": "sinusoidal"},
    {"use_residual": False, "positional": "none"},
]


def tiny_model(**kwargs):
    cfg = TransformerConfig(vocab_size=11, max_seq_len=48, d_model=16,
                            num_heads=2, num_layers=2, **kwargs)
    return TransformerLM(cfg, rng=0)


class TestThreeWayEquivalence:
    @pytest.mark.parametrize("dtype", [None, "float32"],
                             ids=["f64", "f32"])
    @pytest.mark.parametrize("arch", ARCH_CONFIGS,
                             ids=["dense", "windowed", "postln-sin", "nores-nopos"])
    @pytest.mark.parametrize("sampling", SAMPLING_CONFIGS,
                             ids=["greedy", "t1.0", "topk", "topp", "topk+topp"])
    def test_generate_generate_fast_engine_agree(self, arch, sampling, dtype):
        model = tiny_model(dtype=dtype, **arch)
        prompt = [1, 2, 3]
        slow = model.generate(prompt, 12, rng=np.random.default_rng(9), **sampling)
        fast = model.generate_fast(prompt, 12, rng=np.random.default_rng(9), **sampling)
        engine = GenerationEngine(model, batch_size=1,
                                  rng=np.random.default_rng(9),
                                  params=SamplingParams(**sampling))
        batched = engine.generate([prompt], 12)[0]
        assert slow == fast == batched


class TestEngineMatchesGenerateFast:
    @pytest.mark.parametrize("dtype", [None, "float32"], ids=["f64", "f32"])
    def test_batch_one_bit_identical_stochastic(self, dtype):
        model = tiny_model(dtype=dtype)
        for seed in (0, 7, 123):
            ref = model.generate_fast([2, 4, 6], 20,
                                      rng=np.random.default_rng(seed),
                                      temperature=1.2, top_k=7)
            engine = GenerationEngine(
                model, batch_size=1, rng=np.random.default_rng(seed),
                params=SamplingParams(temperature=1.2, top_k=7))
            assert engine.generate([[2, 4, 6]], 20)[0] == ref

    def test_batch_one_shared_rng_stream_across_requests(self):
        """One slot + one RNG: the engine must consume draws exactly like
        sequential generate_fast calls sharing that RNG."""
        model = tiny_model()
        prompts = [[1], [2, 3], [4, 5, 6]]
        rng = np.random.default_rng(42)
        refs = [model.generate_fast(p, 8, rng=rng, temperature=1.1) for p in prompts]
        engine = GenerationEngine(model, batch_size=1,
                                  rng=np.random.default_rng(42),
                                  params=SamplingParams(temperature=1.1))
        assert engine.generate(prompts, 8) == refs

    @pytest.mark.parametrize("dtype", [None, "float32"], ids=["f64", "f32"])
    def test_ragged_batch_greedy_matches_per_sequence(self, dtype):
        model = tiny_model(dtype=dtype)
        prompts = [[1, 2, 3], [0], [4, 5, 6, 7, 8, 0, 1], [2, 2], [9, 10]]
        engine = GenerationEngine(model, batch_size=5, params=SamplingParams(greedy=True))
        outs = engine.generate(prompts, 15)
        refs = [model.generate_fast(p, 15, greedy=True) for p in prompts]
        assert outs == refs

    def test_ragged_windowed_batch_matches_per_sequence(self):
        model = tiny_model(attention_window=3)
        prompts = [[1, 2, 3, 4, 5], [0], [6, 7]]
        engine = GenerationEngine(model, batch_size=3, params=SamplingParams(greedy=True))
        outs = engine.generate(prompts, 12)
        refs = [model.generate_fast(p, 12, greedy=True) for p in prompts]
        assert outs == refs


class TestContinuousBatching:
    def test_queue_longer_than_slot_pool(self):
        model = tiny_model()
        prompts = [[i % 11] for i in range(10)]
        engine = GenerationEngine(model, batch_size=3, params=SamplingParams(greedy=True))
        outs = engine.generate(prompts, 9)
        refs = [model.generate_fast(p, 9, greedy=True) for p in prompts]
        assert outs == refs

    def test_independent_retirement_on_stop_token(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=4, params=SamplingParams(greedy=True, stop_token=5))
        ids = [engine.submit([t], 20) for t in (1, 2, 3, 4)]
        results = engine.run()
        assert [r.request_id for r in results] == ids
        for r in results:
            ref = model.generate_fast([r.tokens[0]], 20, greedy=True, stop_token=5)
            assert r.tokens == ref
            if r.finish_reason == "stop_token":
                assert r.tokens[-1] == 5
            else:
                assert r.finish_reason == "length"
                assert len(r.completion) == 20

    def test_retired_slot_is_reused(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True))
        engine.submit([1], 3)
        engine.submit([2], 18)
        engine.submit([3], 3)  # queued until a slot frees up
        engine.run()
        # request 1 retires after 3 steps and request 3 takes its slot while
        # request 2 (18 steps) is still decoding: 18 total model steps, not
        # the 18 + 3 = 21 a wait-for-drain scheduler would need.
        assert engine.total_steps == 18

    def test_per_request_stop_token_override(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True, stop_token=5))
        a = engine.submit([1], 12)
        b = engine.submit([1], 12, stop_token=None)  # never stops early
        results = {r.request_id: r for r in engine.run()}
        assert results[a].tokens == model.generate_fast([1], 12, greedy=True,
                                                        stop_token=5)
        assert results[b].tokens == model.generate_fast([1], 12, greedy=True)

    def test_engine_batched_sampling_is_reproducible(self):
        model = tiny_model()
        runs = []
        for _ in range(2):
            engine = GenerationEngine(
                model, batch_size=4, rng=np.random.default_rng(17),
                params=SamplingParams(temperature=1.2, top_p=0.9))
            runs.append(engine.generate([[1], [2], [3], [4], [5]], 10))
        assert runs[0] == runs[1]


class TestEngineValidation:
    def test_rejects_bad_requests(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True))
        with pytest.raises(ValueError):
            engine.submit([], 5)
        with pytest.raises(ValueError):
            engine.submit([1], -1)
        with pytest.raises(ValueError):
            engine.submit([1] * 40, 20)  # exceeds model window
        with pytest.raises(ValueError):
            GenerationEngine(model, batch_size=0)

    def test_zero_new_tokens_returns_prompt(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True))
        assert engine.generate([[1, 2]], 0) == [[1, 2]]

    def test_result_metadata(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True))
        engine.submit([1, 2, 3], 6)
        (result,) = engine.run()
        assert result.prompt_len == 3
        assert result.completion == result.tokens[3:]
        assert len(result.completion) == 6
        assert result.steps == 3 + 6 - 1  # prefill + decode, sharing one step


class TestInterleavedSubmitters:
    """PR 6 satellites: generate() must not assume contiguous request
    ids, engines must be reusable, and serving state must stay fresh —
    the invariants the HTTP serving layer depends on."""

    def test_generate_keeps_foreign_results(self):
        """A request submitted outside generate() is neither mis-mapped
        into its output nor discarded: the old first+i indexing lost it."""
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True))
        foreign = engine.submit([7, 8], 5)
        outs = engine.generate([[1, 2], [3]], 6)
        assert outs == [model.generate_fast([1, 2], 6, greedy=True),
                        model.generate_fast([3], 6, greedy=True)]
        leftovers = engine.run()
        assert [r.request_id for r in leftovers] == [foreign]
        assert leftovers[0].tokens == model.generate_fast([7, 8], 5,
                                                          greedy=True)

    def test_back_to_back_generate_calls_on_one_engine(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True))
        for _ in range(3):  # request ids keep climbing across calls
            outs = engine.generate([[1], [2, 3]], 7)
            assert outs == [model.generate_fast([1], 7, greedy=True),
                            model.generate_fast([2, 3], 7, greedy=True)]

    def test_back_to_back_run_calls_on_one_engine(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True))
        first = engine.submit([1], 5)
        assert [r.request_id for r in engine.run()] == [first]
        second = engine.submit([2], 5)
        third = engine.submit([3], 5)
        results = engine.run()
        assert [r.request_id for r in results] == [second, third]
        assert results[0].tokens == model.generate_fast([2], 5, greedy=True)

    def test_generate_with_zero_token_and_normal_requests(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True))
        outs = engine.generate([[1, 2], [3, 4]], 0)
        assert outs == [[1, 2], [3, 4]]
        assert engine.generate([[5]], 4) == \
            [model.generate_fast([5], 4, greedy=True)]


class TestServingSupport:
    def test_cancel_queued_request(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True))
        keep = engine.submit([1], 6)
        dropped = engine.submit([2, 3], 6)  # waits behind `keep`
        result = engine.cancel(dropped)
        assert result.request_id == dropped
        assert result.finish_reason == "cancelled"
        assert result.tokens == [2, 3]  # nothing decoded yet
        finished = engine.run()
        assert [r.request_id for r in finished] == [keep, dropped]
        assert engine.total_steps == 6  # queue never reached the model

    def test_cancel_active_request_reclaims_slot(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True))
        victim = engine.submit([1], 20)
        queued = engine.submit([2], 3)
        for _ in range(4):
            engine.step()
        assert engine.cancel(victim).steps == 4
        assert engine.num_active == 0  # slot reclaimed immediately
        results = {r.request_id: r for r in engine.run()}
        assert results[queued].tokens == model.generate_fast([2], 3,
                                                             greedy=True)

    def test_cancel_unknown_or_finished_returns_none(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True))
        request = engine.submit([1], 3)
        engine.run()
        assert engine.cancel(request) is None
        assert engine.cancel(999) is None

    def test_on_token_callback_streams_every_sampled_token(self):
        model = tiny_model()
        streamed: dict[int, list[int]] = {}
        engine = GenerationEngine(
            model, batch_size=2,
            params=SamplingParams(greedy=True, stop_token=5),
            on_token=lambda rid, tok: streamed.setdefault(rid, []).append(tok))
        ids = [engine.submit([t], 12) for t in (1, 2, 3)]
        results = {r.request_id: r for r in engine.run()}
        assert set(streamed) == set(ids)
        for request_id in ids:
            # stop token included, matching the completion convention
            assert streamed[request_id] == results[request_id].completion

    def test_drain_is_incremental(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True))
        short = engine.submit([1], 2)
        long = engine.submit([2], 10)
        drained = []
        while engine.has_work:
            engine.step()
            drained.extend(engine.drain())
            assert engine.drain() == []  # nothing left behind
        assert [r.request_id for r in drained] == [short, long]
        assert engine.run() == []

    def test_zero_token_request_emits_finished_event(self):
        model = tiny_model()
        obs = Observability.standard()
        engine = GenerationEngine(model, batch_size=1, params=SamplingParams(greedy=True), obs=obs)
        engine.submit([1, 2], 0)
        engine.submit([3], 4)
        engine.run()
        submitted = obs.events.of_type("request_submitted")
        finished = obs.events.of_type("request_finished")
        assert len(submitted) == len(finished) == 2
        inline = [e for e in finished if e["request_id"] == 0]
        assert inline[0]["finish_reason"] == "length"
        assert inline[0]["new_tokens"] == 0

    def test_gauges_fresh_at_every_transition(self):
        model = tiny_model()
        obs = Observability.standard()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True), obs=obs)
        active = obs.metrics.gauge("engine.active_slots")
        queued = obs.metrics.gauge("engine.queue_depth")
        for prompt in ([1], [2], [3]):
            engine.submit(prompt, 4)
        # stats scraped *between* submit and the first step must be live
        assert queued.value == 3 and active.value == 0
        engine.step()  # admits 2, queue drops to 1
        assert queued.value == 1 and active.value == 2
        engine.run()
        assert queued.value == 0 and active.value == 0

    def test_stats_consistent_midflight(self):
        model = tiny_model()
        engine = GenerationEngine(model, batch_size=2, params=SamplingParams(greedy=True))
        for prompt in ([1], [2], [3]):
            engine.submit(prompt, 6)
        stats = engine.stats()
        assert stats["queue_depth"] == 3 and stats["active_slots"] == 0
        engine.step()
        stats = engine.stats()
        assert stats["queue_depth"] == 1 and stats["active_slots"] == 2
        assert stats["requests_submitted"] == 3
        engine.run()
        stats = engine.stats()
        assert stats["requests_completed"] == 3
        assert stats["active_slots"] == stats["queue_depth"] == 0


class TestGenerateFastStopSemantics:
    """Satellite: generate_fast's stop-token return semantics must match
    LanguageModel.generate exactly, for the same seed."""

    def test_stop_token_parity_with_generate(self):
        model = tiny_model()
        for seed in range(5):
            for stop in (3, 5, None):
                slow = model.generate([1, 2], 18, rng=np.random.default_rng(seed),
                                      temperature=1.4, stop_token=stop)
                fast = model.generate_fast([1, 2], 18,
                                           rng=np.random.default_rng(seed),
                                           temperature=1.4, stop_token=stop)
                assert slow == fast

    def test_greedy_stop_token_included_once(self):
        model = tiny_model()
        out = model.generate_fast([1], 25, greedy=True, stop_token=5)
        ref = model.generate([1], 25, greedy=True, stop_token=5)
        assert out == ref
        if 5 in out[1:]:
            assert out.index(5, 1) == len(out) - 1
