"""Prometheus text exposition format: mapping, escaping, validity.

``repro.obs.exposition`` is what ``GET /metrics`` serves, so its output
must be accepted by any Prometheus-compatible scraper.  These tests
pin the mapping rules (counter ``_total`` suffixes, gauge passthrough,
histogram ``_bucket``/``_sum``/``_count`` families) and run every
exposition through :func:`parse_exposition` — a strict text-format
parser that raises on anything malformed — so "a parser accepts it" is
a tested property, not a hope.
"""

import math
import re

import pytest

from repro.obs import MetricsRegistry
from repro.obs.exposition import (
    DEFAULT_BUCKETS,
    escape_label_value,
    format_value,
    sanitize_name,
    to_prometheus,
)

NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
SAMPLE_RE = re.compile(
    rf"^({NAME_RE})(\{{(.*)\}})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$")
LABEL_RE = re.compile(rf'({NAME_RE})="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> dict:
    """Strict parse of the text exposition format; raises on violations.

    Returns ``{metric_base_name: {"type": ..., "samples": [(name,
    labels, value), ...]}}``.  Enforces: newline-terminated body, TYPE
    declared before its samples, legal sample-line syntax, and numeric
    values.
    """
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    families: dict = {}
    declared: dict = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ValueError(f"bad TYPE: {line!r}")
            declared[name] = kind
            families.setdefault(name, {"type": kind, "samples": []})
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            raise ValueError(f"unknown comment line: {line!r}")
        match = SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {line!r}")
        name, _, labels_raw, value = match.groups()
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        owner = base if base in declared else name
        if owner not in declared:
            raise ValueError(f"sample {name!r} before its TYPE line")
        labels = dict(LABEL_RE.findall(labels_raw)) if labels_raw else {}
        if value not in ("+Inf", "-Inf", "NaN"):
            float(value)
        families[owner]["samples"].append((name, labels, value))
    return families


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestNameAndValueRules:
    def test_dotted_names_sanitized(self):
        assert sanitize_name("engine.queue_wait.seconds") == \
            "engine_queue_wait_seconds"

    def test_leading_digit_prefixed(self):
        assert sanitize_name("9lives")[0] not in "0123456789"

    def test_label_value_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_format_value_specials(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"
        assert format_value(3.0) == "3"
        assert float(format_value(0.25)) == 0.25


class TestCounterGaugeMapping:
    def test_counter_total_suffix_and_type(self, registry):
        registry.counter("engine.steps").inc(41)
        registry.counter("engine.steps").inc()
        text = to_prometheus(registry)
        families = parse_exposition(text)
        assert families["engine_steps_total"]["type"] == "counter"
        ((name, labels, value),) = families["engine_steps_total"]["samples"]
        assert name == "engine_steps_total" and value == "42"

    def test_counter_already_suffixed_not_doubled(self, registry):
        registry.counter("requests_total").inc(3)
        text = to_prometheus(registry)
        assert "requests_total_total" not in text
        assert "requests_total 3" in text

    def test_gauge_type_and_negative_value(self, registry):
        registry.gauge("queue.depth").set(-2)
        families = parse_exposition(to_prometheus(registry))
        assert families["queue_depth"]["type"] == "gauge"
        assert families["queue_depth"]["samples"][0][2] == "-2"

    def test_constant_labels_on_every_line(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        text = to_prometheus(registry, labels={"job": 'we"ird\njob'})
        for _, labels, _ in (s for fam in parse_exposition(text).values()
                             for s in fam["samples"]):
            assert labels["job"] == 'we\\"ird\\njob'


class TestHistogramMapping:
    def test_bucket_lines_cumulative_and_pinned(self, registry):
        hist = registry.histogram("ttft.seconds")
        for value in (0.001, 0.003, 0.02, 0.07, 0.9, 3.0, 20.0):
            hist.observe(value)
        families = parse_exposition(to_prometheus(registry))
        family = families["ttft_seconds"]
        assert family["type"] == "histogram"
        buckets = [(labels["le"], int(value)) for name, labels, value
                   in family["samples"] if name.endswith("_bucket")]
        # one line per default bound plus +Inf, in ascending order
        assert [le for le, _ in buckets] == \
            [format_value(b) for b in DEFAULT_BUCKETS] + ["+Inf"]
        counts = [c for _, c in buckets]
        assert counts == sorted(counts)          # cumulative => monotone
        assert counts[-1] == hist.count          # +Inf pinned to exact count
        (sum_line,) = [v for n, _, v in family["samples"]
                       if n.endswith("_sum")]
        (count_line,) = [v for n, _, v in family["samples"]
                         if n.endswith("_count")]
        assert math.isclose(float(sum_line), hist.total)
        assert int(count_line) == hist.count

    def test_empty_histogram_all_zero(self, registry):
        registry.histogram("empty.seconds")
        families = parse_exposition(to_prometheus(registry))
        for name, _, value in families["empty_seconds"]["samples"]:
            assert float(value) == 0.0

    def test_bucket_estimates_scale_to_total_count(self, registry):
        # Decimation keeps only a sample; cumulative estimates must still
        # be in true-count units, not sample units.
        hist = registry.histogram("big.seconds")
        for i in range(10000):
            hist.observe(i / 1000.0)  # ramp over [0, 10)
        counts = hist.bucket_counts([5.0, 10.0])
        assert counts[1] == 10000
        assert abs(counts[0] - 5000) < 500


class TestWholeExposition:
    def test_empty_registry_still_valid(self, registry):
        parse_exposition(to_prometheus(registry))

    def test_mixed_registry_round_trip(self, registry):
        registry.counter("serve.accepted").inc(7)
        registry.gauge("engine.active_slots").set(3)
        registry.histogram("engine.ttft_seconds").observe(0.05)
        families = parse_exposition(to_prometheus(registry))
        assert set(families) == {"serve_accepted_total",
                                 "engine_active_slots",
                                 "engine_ttft_seconds"}

    def test_help_texts_rendered(self, registry):
        registry.counter("steps").inc()
        text = to_prometheus(registry,
                             help_texts={"steps": "total\nsteps \\ taken"})
        assert "# HELP steps_total total\\nsteps \\\\ taken" in text
        parse_exposition(text)
