"""Property-based tests (hypothesis) for autograd invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, check_gradients, cross_entropy, softmax

_FINITE = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False,
                    allow_infinity=False)


def _arrays(max_side=4):
    return st.lists(
        st.lists(_FINITE, min_size=1, max_size=max_side),
        min_size=1, max_size=max_side,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1).map(np.array)


@settings(max_examples=40, deadline=None)
@given(_arrays())
def test_add_mul_linearity_gradients(data):
    """d/dx of (a*x + b).sum() is exactly a, independent of x."""
    rng = np.random.default_rng(0)
    a = rng.normal(size=data.shape)
    x = Tensor(data, requires_grad=True)
    (Tensor(a) * x + 3.0).sum().backward()
    assert np.allclose(x.grad, a)


@settings(max_examples=40, deadline=None)
@given(_arrays())
def test_sum_gradient_is_ones(data):
    x = Tensor(data, requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad, np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(_arrays())
def test_softmax_is_distribution(data):
    probs = softmax(Tensor(data)).data
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=-1), 1.0)


@settings(max_examples=40, deadline=None)
@given(_arrays())
def test_softmax_shift_invariance(data):
    shift = 7.3
    assert np.allclose(
        softmax(Tensor(data)).data,
        softmax(Tensor(data + shift)).data,
        atol=1e-10,
    )


@settings(max_examples=30, deadline=None)
@given(_arrays(max_side=3))
def test_chain_rule_matches_finite_differences(data):
    x = Tensor(data, requires_grad=True)
    check_gradients(lambda x: (x.tanh() * x + x.exp()).sum(), [x],
                    atol=1e-4, rtol=1e-3)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=10_000),
)
def test_cross_entropy_nonnegative_and_bounded_by_log_v(n, v, seed):
    """0 <= CE and CE(uniform logits) == log V exactly."""
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(n, v)))
    targets = rng.integers(0, v, size=n)
    loss = float(cross_entropy(logits, targets).data)
    assert loss >= 0.0
    uniform = float(cross_entropy(Tensor(np.zeros((n, v))), targets).data)
    assert uniform == np.log(v) or abs(uniform - np.log(v)) < 1e-12


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_matmul_grad_matches_transpose_identity(seed):
    """For f = sum(A @ B): dA = ones @ B^T, dB = A^T @ ones."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
    (a @ b).sum().backward()
    ones = np.ones((3, 2))
    assert np.allclose(a.grad, ones @ b.data.T)
    assert np.allclose(b.grad, a.data.T @ ones)


@settings(max_examples=30, deadline=None)
@given(_arrays())
def test_reshape_roundtrip_gradient_identity(data):
    x = Tensor(data, requires_grad=True)
    x.reshape(-1).reshape(data.shape).sum().backward()
    assert np.allclose(x.grad, np.ones_like(data))
