"""Unit tests for Vocabulary and the three tokenizers."""

import pytest

from repro.data import BPETokenizer, CharTokenizer, Vocabulary, WordTokenizer


class TestVocabulary:
    def test_roundtrip(self):
        v = Vocabulary(["a", "b", "c"])
        assert v.encode(["c", "a"]) == [2, 0]
        assert v.decode([2, 0]) == ["c", "a"]
        assert len(v) == 3
        assert "b" in v and "z" not in v

    def test_duplicate_tokens_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary(["a", "a"])

    def test_unknown_token_without_unk_raises(self):
        v = Vocabulary(["a"])
        with pytest.raises(KeyError):
            v.token_to_id("b")

    def test_unk_fallback(self):
        v = Vocabulary(["<unk>", "a"], unk_token="<unk>")
        assert v.token_to_id("zzz") == 0

    def test_unk_must_be_member(self):
        with pytest.raises(ValueError):
            Vocabulary(["a"], unk_token="<unk>")

    def test_from_corpus_frequency_order(self):
        v = Vocabulary.from_corpus("a b b c c c".split())
        assert v.tokens == ["c", "b", "a"]

    def test_from_corpus_min_count_and_max_size(self):
        tokens = "a a a b b c".split()
        v = Vocabulary.from_corpus(tokens, min_count=2)
        assert "c" not in v
        v2 = Vocabulary.from_corpus(tokens, max_size=1)
        assert len(v2) == 1 and v2.tokens == ["a"]

    def test_from_corpus_specials_first(self):
        v = Vocabulary.from_corpus("x y".split(), specials=["<pad>"], unk_token="<unk>")
        assert v.tokens[0] == "<pad>"
        assert v.tokens[1] == "<unk>"

    def test_iteration(self):
        v = Vocabulary(["a", "b"])
        assert list(v) == ["a", "b"]


class TestCharTokenizer:
    def test_roundtrip(self):
        tok = CharTokenizer("hello world")
        text = "low hold"
        assert tok.decode(tok.encode(text)) == text

    def test_alphabet_is_sorted_unique(self):
        tok = CharTokenizer("banana")
        assert tok.vocab.tokens == ["a", "b", "n"]

    def test_unk_token(self):
        tok = CharTokenizer("abc", unk_token="?")
        ids = tok.encode("axc")
        assert tok.decode(ids) == "a?c"


class TestWordTokenizer:
    def test_splits_words_and_punctuation(self):
        tok = WordTokenizer("The cat sat. The dog ran!")
        assert tok.tokenize("The cat.") == ["the", "cat", "."]

    def test_unk_for_unseen(self):
        tok = WordTokenizer("a b c")
        assert tok.vocab.id_to_token(tok.encode("zebra")[0]) == "<unk>"

    def test_case_preservation_option(self):
        tok = WordTokenizer("The THE the", lowercase=False)
        assert "The" in tok.vocab and "THE" in tok.vocab

    def test_detokenize_joins_with_spaces(self):
        tok = WordTokenizer("a b")
        assert tok.detokenize(["a", "b"]) == "a b"


class TestBPETokenizer:
    CORPUS = ("low low low low low lower lower newest newest newest "
              "newest newest newest widest widest widest")

    def test_learns_frequent_merges(self):
        tok = BPETokenizer(self.CORPUS, num_merges=30)
        # 'est</w>' should have been merged (appears in newest/widest x9)
        merged_symbols = {a + b for a, b in tok.merges}
        assert any("est" in s for s in merged_symbols)

    def test_roundtrip_seen_words(self):
        tok = BPETokenizer(self.CORPUS, num_merges=20)
        assert tok.decode(tok.encode("low newest")) == "low newest"

    def test_unseen_word_falls_back_to_chars(self):
        tok = BPETokenizer(self.CORPUS, num_merges=10)
        tokens = tok.tokenize("lot")  # 't' seen, merges may not apply
        assert "".join(tokens).replace("</w>", "") == "lot"

    def test_zero_merges_is_character_level(self):
        tok = BPETokenizer("ab ba", num_merges=0)
        assert tok.tokenize("ab") == ["a", "b", "</w>"]

    def test_more_merges_means_fewer_tokens(self):
        few = BPETokenizer(self.CORPUS, num_merges=2)
        many = BPETokenizer(self.CORPUS, num_merges=50)
        text = "newest lower widest"
        assert len(many.tokenize(text)) <= len(few.tokenize(text))

    def test_subword_decomposition_is_meaningful(self):
        """The paper's motivating example: shared stems become tokens."""
        corpus = " ".join(["symmetry"] * 8 + ["symmetric"] * 8 + ["symmetrize"] * 8
                          + ["super"] * 8 + ["ization"] * 8)
        tok = BPETokenizer(corpus, num_merges=60)
        pieces = tok.tokenize("symmetry")
        assert len(pieces) <= 3  # stem has been merged into few units

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            BPETokenizer("", num_merges=5)

    def test_negative_merges_rejected(self):
        with pytest.raises(ValueError):
            BPETokenizer("a b", num_merges=-1)

    def test_deterministic(self):
        t1 = BPETokenizer(self.CORPUS, num_merges=25)
        t2 = BPETokenizer(self.CORPUS, num_merges=25)
        assert t1.merges == t2.merges
