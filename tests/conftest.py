"""Shared fixtures: deterministic RNGs, tiny corpora, small models."""

import numpy as np
import pytest

from repro.core import TransformerConfig, TransformerLM


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_stream():
    """A near-deterministic token stream a small model can learn."""
    rng = np.random.default_rng(0)
    tokens = []
    state = 0
    for _ in range(2000):
        state = (state + 1) % 5 if rng.random() < 0.95 else int(rng.integers(0, 8))
        tokens.append(state)
    return np.array(tokens, dtype=np.int64)


@pytest.fixture
def tiny_transformer():
    config = TransformerConfig(
        vocab_size=8, max_seq_len=16, d_model=16, num_heads=2,
        num_layers=2, d_ff=32,
    )
    return TransformerLM(config, rng=0)
