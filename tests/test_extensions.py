"""Tests for the extension features: local attention and beam search."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.core import TransformerConfig, TransformerLM, causal_mask
from repro.lm import NGramLM


class TestLocalAttention:
    def test_banded_mask_values(self):
        mask = causal_mask(6, window=3)[0, 0]
        assert mask[5, 5] == 0 and mask[5, 4] == 0 and mask[5, 3] == 0
        assert mask[5, 2] < -1e8  # out of window
        assert mask[2, 0] == 0  # short prefixes unaffected
        assert mask[0, 1] < -1e8  # still causal

    def test_window_validation(self):
        with pytest.raises(ValueError):
            causal_mask(4, window=0)
        with pytest.raises(ValueError):
            TransformerConfig(vocab_size=4, attention_window=0)

    def test_attention_weights_respect_window(self):
        cfg = TransformerConfig(vocab_size=8, max_seq_len=16, d_model=16,
                                num_heads=2, num_layers=1, attention_window=2)
        model = TransformerLM(cfg, rng=0)
        cache = {}
        with no_grad():
            model.forward(np.zeros((1, 8), dtype=int), cache=cache)
        weights = cache["block0.weights"][0, 0]
        assert np.allclose(np.tril(weights, -2), 0.0)
        assert np.allclose(weights.sum(axis=-1), 1.0)

    def test_local_model_ignores_distant_context(self):
        """With window w and 1 layer, logits at t depend only on the last
        w tokens — changing older tokens has no effect."""
        cfg = TransformerConfig(vocab_size=8, max_seq_len=16, d_model=16,
                                num_heads=2, num_layers=1, attention_window=2)
        model = TransformerLM(cfg, rng=0)
        a = np.array([[1, 2, 3, 4, 5]])
        b = np.array([[7, 7, 3, 4, 5]])  # differs only at positions 0-1
        with no_grad():
            la = model.forward(a).data[0, -1]
            lb = model.forward(b).data[0, -1]
        assert np.allclose(la, lb, atol=1e-10)

    def test_full_attention_does_not_ignore_distant_context(self):
        cfg = TransformerConfig(vocab_size=8, max_seq_len=16, d_model=16,
                                num_heads=2, num_layers=1)
        model = TransformerLM(cfg, rng=0)
        a = np.array([[1, 2, 3, 4, 5]])
        b = np.array([[7, 7, 3, 4, 5]])
        with no_grad():
            la = model.forward(a).data[0, -1]
            lb = model.forward(b).data[0, -1]
        assert not np.allclose(la, lb)

    def test_local_model_trains(self):
        from repro.train import train_lm_on_stream

        cfg = TransformerConfig(vocab_size=5, max_seq_len=12, d_model=16,
                                num_heads=2, num_layers=2, attention_window=4)
        model = TransformerLM(cfg, rng=0)
        stream = np.array([0, 1, 2, 3, 4] * 60)
        history = train_lm_on_stream(model, stream, num_steps=80,
                                     batch_size=8, seq_len=10)
        assert history.final_loss < 0.8


class TestBeamSearch:
    @pytest.fixture
    def bigram(self):
        # deterministic-ish chain 0 -> 1 -> 2 -> 3 -> 0 with noise
        rng = np.random.default_rng(0)
        stream = []
        s = 0
        for _ in range(2000):
            s = (s + 1) % 4 if rng.random() < 0.9 else int(rng.integers(0, 4))
            stream.append(s)
        return NGramLM(4, order=2, add_k=0.01).fit(np.array(stream))

    def test_beam_matches_greedy_on_peaked_model(self, bigram):
        greedy = bigram.generate([0], 6, greedy=True)
        beam = bigram.beam_search([0], 6, beam_width=3)
        assert beam == greedy == [0, 1, 2, 3, 0, 1, 2]

    def test_wider_beam_never_worse_in_logprob(self, bigram):
        narrow = bigram.beam_search([0], 8, beam_width=1)
        wide = bigram.beam_search([0], 8, beam_width=5)
        assert bigram.sequence_logprob(np.array(wide)) >= \
            bigram.sequence_logprob(np.array(narrow)) - 1e-9

    def test_beam_finds_delayed_reward_path(self):
        """A model where the greedy first step leads to a bad second step;
        beam search must pick the globally better two-step path."""

        from repro.lm.base import LanguageModel

        # Explicit trap: P(1|start)=0.55 then P(anything|1)<=0.4;
        # P(2|start)=0.45 then P(2|2)=0.98.  Greedy takes 1; beam takes 2.
        class Trap2(LanguageModel):
            vocab_size = 3

            def next_token_logprobs(self, context):
                context = list(context)
                if not context:
                    return np.log(np.array([1e-9, 0.55, 0.45]))
                if context[-1] == 1:
                    return np.log(np.array([0.4, 0.3, 0.3]))
                return np.log(np.array([0.01, 0.01, 0.98]))

        model = Trap2()
        greedy = model.generate([], 2, greedy=True)
        beam = model.beam_search([], 2, beam_width=3)
        assert greedy[0] == 1
        assert beam[0] == 2  # 0.45 * 0.98 > 0.55 * 0.4
        assert model.sequence_logprob(np.array(beam)) > \
            model.sequence_logprob(np.array(greedy))

    def test_stop_token_halts_beam(self, bigram):
        out = bigram.beam_search([0], 10, beam_width=2, stop_token=2)
        assert out[-1] == 2
        assert len(out) <= 11

    def test_beam_width_validated(self, bigram):
        with pytest.raises(ValueError):
            bigram.beam_search([0], 3, beam_width=0)


class TestKVCacheGeneration:
    @pytest.fixture(scope="class")
    def trained(self):
        from repro.train import train_lm_on_stream

        cfg = TransformerConfig(vocab_size=9, max_seq_len=64, d_model=32,
                                num_heads=4, num_layers=2)
        model = TransformerLM(cfg, rng=0)
        stream = np.array(list(range(9)) * 60)
        train_lm_on_stream(model, stream, num_steps=80, batch_size=8,
                           seq_len=32)
        return model

    def test_greedy_parity_with_full_forward(self, trained):
        for prompt in ([1, 2, 3], [0], [4, 5, 6, 7, 8, 0, 1]):
            assert trained.generate(prompt, 20, greedy=True) == \
                trained.generate_fast(prompt, 20, greedy=True)

    def test_stochastic_parity_with_same_rng(self, trained):
        a = trained.generate([1, 2], 15, rng=np.random.default_rng(7),
                             temperature=1.3, top_k=5)
        b = trained.generate_fast([1, 2], 15, rng=np.random.default_rng(7),
                                  temperature=1.3, top_k=5)
        assert a == b

    def test_parity_across_architectures(self):
        for kwargs in ({"pre_layernorm": False, "positional": "sinusoidal"},
                       {"attention_window": 4},
                       {"use_residual": False}):
            cfg = TransformerConfig(vocab_size=9, max_seq_len=32, d_model=16,
                                    num_heads=2, num_layers=1, **kwargs)
            model = TransformerLM(cfg, rng=0)
            assert model.generate([1, 2, 3], 10, greedy=True) == \
                model.generate_fast([1, 2, 3], 10, greedy=True)

    def test_window_overflow_rejected(self, trained):
        with pytest.raises(ValueError):
            trained.generate_fast([1] * 60, 10, greedy=True)
        with pytest.raises(ValueError):
            trained.generate_fast([], 5, greedy=True)

    def test_stop_token(self, trained):
        out = trained.generate_fast([1], 30, greedy=True, stop_token=5)
        assert out[-1] == 5 or len(out) == 31
