"""SLO monitor and flight recorder unit tests.

``SLOMonitor`` drives ``GET /healthz``'s three-state verdict, so the
transition logic (ok → degraded → failing and back), the sliding-window
semantics, and the breach/recovery events are all pinned here.
``FlightRecorder`` is the crash blackbox; its ring bounds, telemetry
wiring, and dump format are pinned likewise.  HTTP-level integration of
both lives in ``tests/test_serve.py``.
"""

import json
import threading

import pytest

from repro.obs import (
    EventLog,
    FlightRecorder,
    Observability,
    SLOMonitor,
    SLOThresholds,
)
from repro.obs.slo import STATUS_DEGRADED, STATUS_FAILING, STATUS_OK


def capture_events():
    log = EventLog(path=None)
    seen = []
    log.add_sink(seen.append)
    return log, seen


class TestSLOVerdict:
    def test_empty_window_is_ok(self):
        monitor = SLOMonitor()
        verdict = monitor.evaluate()
        assert verdict["status"] == STATUS_OK
        assert verdict["breached"] == []
        assert verdict["window_size"] == 0

    def test_one_breached_signal_is_degraded(self):
        monitor = SLOMonitor(SLOThresholds(ttft_p99_s=0.1, min_requests=1))
        monitor.observe_request(ttft_s=5.0)
        verdict = monitor.evaluate()
        assert verdict["status"] == STATUS_DEGRADED
        assert verdict["breached"] == ["ttft_p99_s"]
        assert verdict["signals"]["ttft_p99_s"]["value"] == 5.0

    def test_two_breached_signals_is_failing(self):
        monitor = SLOMonitor(SLOThresholds(
            ttft_p99_s=0.1, max_error_rate=0.0, min_requests=1))
        monitor.observe_request(ttft_s=5.0)
        monitor.observe_request(error=True)
        verdict = monitor.evaluate()
        assert verdict["status"] == STATUS_FAILING
        assert verdict["breached"] == ["error_rate", "ttft_p99_s"]

    def test_min_requests_gates_rate_signals(self):
        monitor = SLOMonitor(SLOThresholds(
            max_shed_rate=0.0, min_requests=3))
        monitor.observe_request(shed=True)
        monitor.observe_request(shed=True)
        assert monitor.status == STATUS_OK  # window too small to judge
        monitor.observe_request(shed=True)
        assert monitor.status == STATUS_DEGRADED

    def test_queue_depth_signal_not_gated(self):
        monitor = SLOMonitor(SLOThresholds(max_queue_depth=4))
        monitor.observe_queue_depth(5)
        assert monitor.status == STATUS_DEGRADED
        monitor.observe_queue_depth(2)
        assert monitor.status == STATUS_OK

    def test_none_threshold_disables_signal(self):
        monitor = SLOMonitor(SLOThresholds(
            ttft_p99_s=None, max_shed_rate=None, max_error_rate=None,
            max_queue_depth=None, min_requests=1))
        monitor.observe_request(ttft_s=1e9, shed=True, error=True)
        monitor.observe_queue_depth(10**9)
        assert monitor.status == STATUS_OK

    def test_window_evicts_old_observations(self):
        monitor = SLOMonitor(SLOThresholds(max_error_rate=0.0,
                                           min_requests=1), window=4)
        monitor.observe_request(error=True)
        assert monitor.status == STATUS_DEGRADED
        for _ in range(4):  # push the error out of the ring
            monitor.observe_request(ttft_s=0.01)
        verdict = monitor.evaluate()
        assert verdict["status"] == STATUS_OK
        assert verdict["window_size"] == 4

    def test_p99_interpolates(self):
        values = [float(i) for i in range(1, 101)]
        assert SLOMonitor._p99(values) == pytest.approx(99.01)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SLOMonitor(window=0)


class TestSLOEvents:
    def test_breach_and_recovery_emit_once_per_transition(self):
        log, seen = capture_events()
        monitor = SLOMonitor(SLOThresholds(max_error_rate=0.0,
                                           min_requests=1),
                             window=4, events=log)
        monitor.observe_request(error=True)
        monitor.observe_request(error=True)  # still degraded: no new event
        for _ in range(4):
            monitor.observe_request(ttft_s=0.01)
        names = [record["event"] for record in seen]
        assert names == ["slo_breach", "slo_recovered"]
        assert seen[0]["status"] == STATUS_DEGRADED
        assert seen[0]["signals"] == ["error_rate"]
        assert seen[1]["previous"] == STATUS_DEGRADED

    def test_escalation_emits_second_breach(self):
        log, seen = capture_events()
        monitor = SLOMonitor(SLOThresholds(
            ttft_p99_s=0.1, max_error_rate=0.0, min_requests=1),
            events=log)
        monitor.observe_request(ttft_s=5.0)   # ok -> degraded
        monitor.observe_request(error=True)   # degraded -> failing
        statuses = [record["status"] for record in seen]
        assert statuses == [STATUS_DEGRADED, STATUS_FAILING]


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record_event({"event": f"e{i}"})
            recorder.record_span({"name": f"s{i}"})
        snap = recorder.snapshot()
        assert [e["event"] for e in snap["events"]] == ["e7", "e8", "e9"]
        assert [s["name"] for s in snap["spans"]] == ["s7", "s8", "s9"]

    def test_attach_captures_events_and_spans(self, tmp_path):
        obs = Observability.standard()
        recorder = FlightRecorder(path=tmp_path / "fr.json").attach(obs)
        obs.events.emit("hello", x=1)
        with obs.tracer.span("work"):
            pass
        snap = recorder.snapshot()
        assert snap["events"][0]["event"] == "hello"
        assert snap["spans"][0]["name"] == "work"

    def test_attach_chains_existing_on_record_hook(self, tmp_path):
        obs = Observability.standard()
        first = []
        obs.tracer.on_record = first.append
        FlightRecorder(path=tmp_path / "fr.json").attach(obs)
        with obs.tracer.span("work"):
            pass
        assert first and first[0]["name"] == "work"

    def test_record_crash_dumps_blackbox(self, tmp_path):
        path = tmp_path / "flightrecord.json"
        recorder = FlightRecorder(path=path, capacity=8)
        recorder.record_event({"event": "before"})
        out = recorder.record_crash(RuntimeError("boom"), request_id=7)
        assert out == str(path)
        assert recorder.dumps == 1
        record = json.loads(path.read_text())
        assert record["reason"] == "crash"
        assert "boom" in record["error"]
        assert record["request_id"] == 7
        names = [e["event"] for e in record["events"]]
        assert names == ["before", "crash"]

    def test_dump_manual_reason_and_capacity(self, tmp_path):
        path = tmp_path / "fr.json"
        recorder = FlightRecorder(path=path, capacity=5)
        recorder.dump()
        record = json.loads(path.read_text())
        assert record["reason"] == "manual"
        assert record["capacity"] == 5

    def test_thread_safe_recording(self, tmp_path):
        recorder = FlightRecorder(path=tmp_path / "fr.json", capacity=64)

        def spin(tag):
            for i in range(100):
                recorder.record_event({"event": f"{tag}{i}"})

        threads = [threading.Thread(target=spin, args=(t,))
                   for t in "abcd"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(recorder.snapshot()["events"]) == 64

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
