"""Tier-1 wiring for the decode-path throughput bench.

Runs ``benchmarks/bench_inference_throughput.py --smoke`` as a subprocess
(tiny model, seconds-scale) so a perf regression on the batched decode
path — e.g. reintroducing per-token cache reallocation — fails the normal
test run, not just a manually-invoked benchmark.  The record's PR 8
phases are gated too: the paged KV backend must hold >=2x less memory
per concurrent request than the dense buffer (bit-identically), and
prefix-cache hits must skip prefill steps.  The PR 9 speculative phase
is gated on deterministic model-step counts (never wall-clock): the
n-gram draft at k=4 must cut model steps >=1.5x while staying
bit-identical to plain greedy decoding.
"""

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO, "benchmarks")


def test_inference_throughput_smoke(tmp_path):
    out = tmp_path / "BENCH_inference.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "bench_inference_throughput.py", "--smoke",
         "--out", str(out)],
        cwd=BENCH_DIR, env=env, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, \
        f"smoke bench failed\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    # the bench's own gate: batched >= single-stream tokens/sec
    assert "SMOKE OK" in proc.stdout

    record = json.loads(out.read_text())
    assert record["bench"] == "inference_throughput"
    assert record["smoke"] is True
    assert record["sequential"]["tokens_per_sec"] > 0
    batch_sizes = [entry["batch_size"] for entry in record["batched"]]
    assert batch_sizes == [1, 2, 4, 8]
    full = record["batched"][-1]
    assert full["tokens_per_sec"] >= record["sequential"]["tokens_per_sec"]
    # continuous batching actually batched: 8 prompts of equal length decode
    # in ~1/8th the model steps of the single-slot engine
    assert full["model_steps"] * 8 == record["batched"][0]["model_steps"]

    # PR 8 memory phase: paged engine holds >=2x less KV per concurrent
    # request than the dense buffer, with bit-identical outputs
    memory = record["memory"]
    assert memory["bit_identical_to_dense"] is True
    assert memory["memory_saving_ratio"] >= 2.0
    assert memory["paged_kv_bytes_per_request"] < \
        memory["dense_kv_bytes_per_request"]

    # PR 8 prefix phase: warm requests hit the cache and skip prefill
    # steps (deterministic counts — wall-clock TTFT is reported but not
    # gated here, to keep tier-1 robust on busy machines)
    prefix = record["prefix"]
    assert prefix["warm_matches_reference"] is True
    assert prefix["prefix_hits"] == prefix["num_requests"] - 1
    assert prefix["warm_prefill_steps_mean"] < prefix["cold_prefill_steps"]
    assert prefix["hit_tokens"] > 0

    # PR 9 speculative phase: bit-identical greedy output with a
    # decisive model-step cut (deterministic counts, never wall-clock)
    spec = record["speculative"]
    assert spec["bit_identical_to_baseline"] is True
    assert spec["step_speedup"] >= 1.5
    assert spec["spec_model_steps"] < spec["baseline_model_steps"]
    assert spec["accepted_tokens_per_step"] >= 1.0
    assert 0.0 < spec["acceptance_rate"] <= 1.0
