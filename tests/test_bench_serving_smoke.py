"""Tier-1 wiring for the serving load bench.

Runs ``benchmarks/bench_serving.py --smoke`` as a subprocess (tiny
model, seconds-scale load) so serving regressions — lost or duplicated
requests under concurrency, admission control that stalls instead of
shedding, HTTP decode paths diverging from ``generate_fast`` — fail the
normal test run, not just a manually-invoked benchmark.
"""

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO, "benchmarks")


def test_serving_smoke(tmp_path):
    out = tmp_path / "BENCH_serving.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "bench_serving.py", "--smoke", "--slo",
         "--out", str(out)],
        cwd=BENCH_DIR, env=env, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, \
        f"smoke bench failed\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    # the bench's own gates: integrity + shedding
    assert "SMOKE OK" in proc.stdout

    record = json.loads(out.read_text())
    assert record["bench"] == "serving"
    assert record["smoke"] is True
    assert "provenance" in record

    phases = record["phases"]
    # batch-1 greedy over HTTP is bit-identical to generate_fast
    assert phases["bit_identity"]["identical"] is True
    # zero lost / duplicated / corrupted requests across all load phases
    totals = record["totals"]
    assert totals["lost"] == 0
    assert totals["duplicated"] == 0
    assert totals["mismatched"] == 0
    # the bursty herd exceeded the queue cap and was shed, not stalled
    assert phases["bursty"]["shed"] > 0
    assert 0.0 < phases["bursty"]["shed_rate"] < 1.0
    for name in ("poisson", "bursty", "closed_loop"):
        phase = phases[name]
        assert phase["completed"] + phase["shed"] == phase["sent"]
        assert phase["other_failures"] == 0
        assert phase["accounting_balanced"]
        assert 0.0 <= phase["ttft_p50_s"] <= phase["ttft_p99_s"]
        assert phase["tokens_per_sec"] > 0
    # the live observability plane answered: /metrics parsed cleanly,
    # /healthz reported a verdict, /v1/trace exported the request's spans
    probe = phases["observability"]
    assert probe["metrics_parseable"] and probe["metrics_sample_lines"] > 0
    assert probe["healthz_status"] == "ok"
    assert probe["trace_export_events"] > 0
    # --slo drove the monitor through breach and back; the timeline is
    # ordered and lands in the JSON record
    slo = phases["slo"]
    assert slo["breaches"] >= 1 and slo["recoveries"] >= 1
    assert slo["final_status"] == "ok"
    times = [t["t_s"] for t in slo["timeline"]]
    assert times == sorted(times)
    assert slo["timeline"][0]["event"] == "slo_breach"
