"""Unit tests for the fused functional ops (softmax, CE, layernorm, ...)."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    check_gradients,
    cross_entropy,
    dropout,
    gelu,
    layer_norm,
    log_softmax,
    relu,
    softmax,
)


def _t(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        y = softmax(_t((4, 7))).data
        assert np.allclose(y.sum(axis=-1), 1.0)
        assert (y > 0).all()

    def test_shift_invariance(self):
        x = _t((3, 5))
        shifted = Tensor(x.data + 1000.0)
        assert np.allclose(softmax(x).data, softmax(shifted).data)

    def test_gradient(self):
        x = _t((3, 5))
        check_gradients(lambda x: softmax(x, axis=-1).square().sum(), [x])
        check_gradients(lambda x: softmax(x, axis=0).square().sum(), [x])

    def test_extreme_logits_stable(self):
        x = Tensor(np.array([[1e9, 0.0, -1e9]]))
        y = softmax(x).data
        assert np.isfinite(y).all()
        assert y[0, 0] == pytest.approx(1.0)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = _t((4, 6))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_gradient(self):
        x = _t((3, 4))
        check_gradients(lambda x: log_softmax(x).square().sum(), [x], atol=1e-5)


class TestCrossEntropy:
    def test_matches_manual_nll(self):
        x = _t((5, 4))
        targets = np.array([0, 1, 2, 3, 0])
        manual = -log_softmax(x).data[np.arange(5), targets].mean()
        assert float(cross_entropy(x, targets).data) == pytest.approx(manual)

    def test_reductions(self):
        x = _t((5, 4))
        targets = np.array([0, 1, 2, 3, 0])
        none = cross_entropy(x, targets, reduction="none")
        assert none.shape == (5,)
        total = cross_entropy(x, targets, reduction="sum")
        assert float(total.data) == pytest.approx(none.data.sum())
        mean = cross_entropy(x, targets, reduction="mean")
        assert float(mean.data) == pytest.approx(none.data.mean())

    def test_3d_logits(self):
        x = _t((2, 3, 4))
        targets = np.array([[0, 1, 2], [3, 0, 1]])
        check_gradients(lambda x: cross_entropy(x, targets), [x])

    def test_gradient_none_reduction(self):
        x = _t((4, 3))
        targets = np.array([0, 1, 2, 0])
        check_gradients(lambda x: cross_entropy(x, targets, reduction="none").square().sum(), [x])

    def test_perfect_prediction_loss_near_zero(self):
        logits = np.full((3, 4), -100.0)
        logits[np.arange(3), [1, 2, 3]] = 100.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2, 3]))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-10)

    def test_out_of_range_target_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(_t((2, 3)), np.array([0, 3]))
        with pytest.raises(ValueError):
            cross_entropy(_t((2, 3)), np.array([-1, 0]))

    def test_bad_reduction_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(_t((2, 3)), np.array([0, 1]), reduction="bogus")

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(_t((2, 3)), np.array([0, 1, 2]))


class TestLayerNorm:
    def test_normalises_last_axis(self):
        x = _t((6, 8))
        w = Tensor(np.ones(8), requires_grad=True)
        b = Tensor(np.zeros(8), requires_grad=True)
        y = layer_norm(x, w, b).data
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(y.var(axis=-1), 1.0, atol=1e-3)

    def test_affine_params_apply(self):
        x = _t((2, 4))
        w = Tensor(np.full(4, 2.0), requires_grad=True)
        b = Tensor(np.full(4, 7.0), requires_grad=True)
        y = layer_norm(x, w, b).data
        assert np.allclose(y.mean(axis=-1), 7.0, atol=1e-6)

    def test_gradients(self):
        x = _t((3, 5))
        w = _t((5,), seed=1)
        b = _t((5,), seed=2)
        check_gradients(lambda x, w, b: layer_norm(x, w, b).square().sum(),
                        [x, w, b], atol=1e-5)

    def test_3d_input(self):
        x = _t((2, 3, 4))
        w = _t((4,), seed=1)
        b = _t((4,), seed=2)
        check_gradients(lambda x, w, b: layer_norm(x, w, b).square().sum(),
                        [x, w, b], atol=1e-5)


class TestActivations:
    def test_gelu_known_values(self):
        x = Tensor(np.array([0.0, 100.0, -100.0]))
        y = gelu(x).data
        assert y[0] == pytest.approx(0.0)
        assert y[1] == pytest.approx(100.0, rel=1e-6)
        assert y[2] == pytest.approx(0.0, abs=1e-6)

    def test_gelu_gradient(self):
        x = _t((4, 4))
        check_gradients(lambda x: gelu(x).square().sum(), [x], atol=1e-5)

    def test_relu_alias(self):
        x = _t((4,))
        assert np.array_equal(relu(x).data, x.relu().data)


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = _t((10, 10))
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_zero_p_is_identity(self):
        x = _t((10,))
        assert dropout(x, 0.0, np.random.default_rng(0)) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, rng).data
        assert out.mean() == pytest.approx(1.0, abs=0.02)
        # surviving entries are scaled by 1/(1-p)
        survivors = out[out > 0]
        assert np.allclose(survivors, 1.0 / 0.7)

    def test_gradient_uses_same_mask(self):
        rng = np.random.default_rng(3)
        x = _t((5, 5))
        out = dropout(x, 0.4, rng)
        out.sum().backward()
        mask = out.data != 0
        assert np.array_equal(x.grad != 0, mask)

    def test_invalid_p_raises(self):
        x = _t((3,))
        with pytest.raises(ValueError):
            dropout(x, 1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            dropout(x, -0.1, np.random.default_rng(0))
