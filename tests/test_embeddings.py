"""Unit tests for co-occurrence, PPMI, SVD, and analogy evaluation."""

import numpy as np
import pytest

from repro.data import Vocabulary, WordTokenizer, attribute_world_corpus, gender_analogy_questions
from repro.embeddings import (
    AnalogyReport,
    analogy_query,
    center_rows,
    cooccurrence_matrix,
    evaluate_analogies,
    explained_variance,
    nearest_words,
    pmi_matrix,
    svd_embedding,
    word_counts,
)


class TestCooccurrence:
    def test_simple_window_counts(self):
        # stream a b a: window 1 pairs (a,b), (b,a) -> symmetric counts
        m = cooccurrence_matrix(np.array([0, 1, 0]), vocab_size=2, window=1)
        assert m[0, 1] == m[1, 0] == 2.0
        assert m[0, 0] == 0.0

    def test_wider_window_sees_further(self):
        ids = np.array([0, 2, 1])
        narrow = cooccurrence_matrix(ids, 3, window=1)
        wide = cooccurrence_matrix(ids, 3, window=2)
        assert narrow[0, 1] == 0.0
        assert wide[0, 1] == 1.0  # one unordered (0, 1) pair at offset 2

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 6, size=300)
        m = cooccurrence_matrix(ids, 6, window=3)
        assert np.array_equal(m, m.T)

    def test_asymmetric_mode(self):
        m = cooccurrence_matrix(np.array([0, 1]), 2, window=1, symmetric=False)
        assert m[1, 0] == 1.0 and m[0, 1] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            cooccurrence_matrix(np.array([0]), 2, window=0)
        with pytest.raises(ValueError):
            cooccurrence_matrix(np.array([5]), 2)

    def test_word_counts(self):
        counts = word_counts(np.array([0, 0, 2]), 4)
        assert np.array_equal(counts, [2, 0, 1, 0])


class TestPMI:
    def test_independent_words_have_zero_pmi(self):
        # counts proportional to outer product of marginals -> PMI ~ 0
        marginal = np.array([4.0, 6.0])
        counts = np.outer(marginal, marginal)
        pmi = pmi_matrix(counts, smoothing=1.0)
        assert np.allclose(pmi, 0.0, atol=1e-10)

    def test_positive_association_positive_pmi(self):
        counts = np.array([[10.0, 0.1], [0.1, 10.0]])
        pmi = pmi_matrix(counts, smoothing=1.0)
        assert pmi[0, 0] > 0 and pmi[1, 1] > 0

    def test_ppmi_clips_negatives(self):
        counts = np.array([[10.0, 0.1], [0.1, 10.0]])
        assert (pmi_matrix(counts, positive=True) >= 0).all()

    def test_zero_counts_map_to_zero(self):
        counts = np.array([[5.0, 0.0], [0.0, 5.0]])
        pmi = pmi_matrix(counts)
        assert pmi[0, 1] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pmi_matrix(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            pmi_matrix(np.zeros((2, 2)))


class TestSVD:
    def test_embedding_shape(self):
        m = np.random.default_rng(0).normal(size=(10, 10))
        e = svd_embedding(m, dim=4)
        assert e.shape == (10, 4)

    def test_full_rank_reconstruction_possible(self):
        m = np.random.default_rng(0).normal(size=(6, 6))
        assert explained_variance(m, 6) == pytest.approx(1.0)

    def test_explained_variance_monotone(self):
        m = np.random.default_rng(0).normal(size=(8, 8))
        fractions = [explained_variance(m, d) for d in (1, 3, 5, 8)]
        assert fractions == sorted(fractions)

    def test_low_rank_matrix_captured_exactly(self):
        rng = np.random.default_rng(0)
        low = rng.normal(size=(10, 2)) @ rng.normal(size=(2, 10))
        assert explained_variance(low, 2) == pytest.approx(1.0)

    def test_dim_validation(self):
        m = np.zeros((4, 4))
        with pytest.raises(ValueError):
            svd_embedding(m, dim=0)
        with pytest.raises(ValueError):
            svd_embedding(np.ones((4, 4)), dim=5)

    def test_center_rows(self):
        m = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(center_rows(m).mean(axis=0), 0.0)


class TestAnalogies:
    def _toy_embedding(self):
        # Perfect additive structure: v(word) = concept + attribute.
        vocab = Vocabulary(["king", "queen", "man", "woman"])
        royal, person = np.array([1.0, 0.0]), np.array([0.0, 0.0])
        male, female = np.array([0.0, 1.0]), np.array([0.0, -1.0])
        e = np.stack([royal + male, royal + female, person + male, person + female])
        return e, vocab

    def test_analogy_query_vector(self):
        e, vocab = self._toy_embedding()
        q = analogy_query(e, vocab, "king", "man", "woman")
        assert np.allclose(q, e[vocab.token_to_id("queen")])

    def test_nearest_words_excludes(self):
        e, vocab = self._toy_embedding()
        q = analogy_query(e, vocab, "king", "man", "woman")
        top = nearest_words(e, vocab, q, k=1, exclude=("king", "man", "woman"))
        assert top[0][0] == "queen"

    def test_evaluate_analogies_perfect_on_toy(self):
        e, vocab = self._toy_embedding()
        report = evaluate_analogies(e, vocab, [("king", "man", "woman", "queen"),
                                               ("queen", "woman", "man", "king")])
        assert report.accuracy == 1.0
        assert report.failures == []

    def test_missing_words_are_skipped(self):
        e, vocab = self._toy_embedding()
        report = evaluate_analogies(e, vocab, [("king", "man", "woman", "queen"),
                                               ("zzz", "man", "woman", "queen")])
        assert report.total == 1

    def test_unknown_word_raises_in_query(self):
        e, vocab = self._toy_embedding()
        with pytest.raises(KeyError):
            analogy_query(e, vocab, "zzz", "man", "woman")

    def test_zero_query_raises(self):
        e, vocab = self._toy_embedding()
        with pytest.raises(ValueError):
            nearest_words(e, vocab, np.zeros(2))

    def test_empty_report_accuracy_zero(self):
        assert AnalogyReport(total=0, correct=0, failures=[]).accuracy == 0.0


class TestEndToEndAnalogies:
    def test_pipeline_solves_gender_analogies(self):
        """Integration: corpus -> co-occurrence -> PPMI -> SVD -> Eq. 9."""
        rng = np.random.default_rng(0)
        text = attribute_world_corpus(rng, num_sentences=4000)
        tok = WordTokenizer(text)
        ids = np.array(tok.encode(text))
        matrix = pmi_matrix(cooccurrence_matrix(ids, tok.vocab_size, window=5))
        embeddings = svd_embedding(matrix, dim=40)
        report = evaluate_analogies(embeddings, tok.vocab,
                                    gender_analogy_questions())
        assert report.total >= 80
        assert report.accuracy > 0.9
