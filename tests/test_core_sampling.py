"""Unit tests for Eq. 8 sampling: temperature, top-k, top-p, greedy."""

import numpy as np
import pytest

from repro.core import filter_top_k, filter_top_p, logits_to_probs, sample_token


class TestLogitsToProbs:
    def test_is_distribution(self):
        probs = logits_to_probs(np.array([1.0, 2.0, 3.0]))
        assert np.isclose(probs.sum(), 1.0)
        assert (probs > 0).all()

    def test_temperature_one_is_softmax(self):
        logits = np.array([0.0, np.log(3.0)])
        probs = logits_to_probs(logits, temperature=1.0)
        assert probs[1] / probs[0] == pytest.approx(3.0)

    def test_low_temperature_sharpens(self):
        logits = np.array([1.0, 2.0, 3.0])
        cold = logits_to_probs(logits, temperature=0.1)
        hot = logits_to_probs(logits, temperature=10.0)
        assert cold.max() > hot.max()
        assert cold[2] > 0.99

    def test_high_temperature_flattens_to_uniform(self):
        probs = logits_to_probs(np.array([1.0, 5.0, 9.0]), temperature=1e6)
        assert np.allclose(probs, 1 / 3, atol=1e-4)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            logits_to_probs(np.zeros(3), temperature=0.0)
        with pytest.raises(ValueError):
            logits_to_probs(np.zeros(3), temperature=-1.0)

    def test_numerical_stability(self):
        probs = logits_to_probs(np.array([1e9, 0.0]))
        assert np.isfinite(probs).all()


class TestTopK:
    def test_keeps_k_largest(self):
        out = filter_top_k(np.array([1.0, 5.0, 3.0, 2.0]), k=2)
        assert out[1] == 5.0 and out[2] == 3.0
        assert out[0] == -np.inf and out[3] == -np.inf

    def test_k_geq_size_is_identity(self):
        logits = np.array([1.0, 2.0])
        assert np.array_equal(filter_top_k(logits, k=5), logits)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            filter_top_k(np.zeros(3), k=0)

    def test_ties_at_threshold_keep_exactly_k(self):
        # Regression: the old threshold rule (out[out < threshold] = -inf)
        # kept every logit tied with the k-th, sampling from > k tokens.
        out = filter_top_k(np.array([2.0, 2.0, 1.0]), k=1)
        assert np.isfinite(out).sum() == 1
        assert out.max() == 2.0
        out = filter_top_k(np.array([3.0, 1.0, 1.0, 1.0, 0.5]), k=3)
        assert np.isfinite(out).sum() == 3
        assert out[0] == 3.0  # the clear winner always survives

    def test_batched_rows_match_single(self):
        rows = np.array([[1.0, 5.0, 3.0, 2.0], [4.0, 4.0, 0.0, -1.0]])
        out = filter_top_k(rows, k=2)
        assert out.shape == rows.shape
        for i in range(2):
            assert np.isfinite(out[i]).sum() == 2
            single = filter_top_k(rows[i], k=2)
            assert np.array_equal(np.isfinite(out[i]), np.isfinite(single))


class TestTopP:
    def test_keeps_minimal_nucleus(self):
        logits = np.log(np.array([0.5, 0.3, 0.15, 0.05]))
        out = filter_top_p(logits, p=0.7)
        assert np.isfinite(out[0]) and np.isfinite(out[1])
        assert out[2] == -np.inf and out[3] == -np.inf

    def test_p_one_keeps_everything(self):
        logits = np.array([1.0, 2.0, 3.0])
        assert np.isfinite(filter_top_p(logits, p=1.0)).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            filter_top_p(np.zeros(3), p=0.0)
        with pytest.raises(ValueError):
            filter_top_p(np.zeros(3), p=1.5)

    def test_batched_rows_match_single(self):
        rng = np.random.default_rng(3)
        rows = rng.normal(size=(5, 8))
        out = filter_top_p(rows, p=0.8)
        for i in range(5):
            assert np.array_equal(out[i], filter_top_p(rows[i], p=0.8))


class TestSampleToken:
    def test_greedy_is_argmax(self):
        assert sample_token(np.array([1.0, 9.0, 3.0]), greedy=True) == 1

    def test_greedy_matches_cold_temperature(self):
        rng = np.random.default_rng(0)
        logits = np.array([1.0, 4.0, 2.0])
        cold_samples = {sample_token(logits, rng, temperature=0.01)
                        for _ in range(20)}
        assert cold_samples == {sample_token(logits, greedy=True)}

    def test_stochastic_needs_rng(self):
        with pytest.raises(ValueError):
            sample_token(np.zeros(3))

    def test_rejects_higher_rank(self):
        with pytest.raises(ValueError):
            sample_token(np.zeros((2, 3, 4)), greedy=True)

    def test_empirical_frequencies_match_softmax(self):
        rng = np.random.default_rng(0)
        logits = np.log(np.array([0.6, 0.3, 0.1]))
        counts = np.zeros(3)
        n = 3000
        for _ in range(n):
            counts[sample_token(logits, rng)] += 1
        assert np.allclose(counts / n, [0.6, 0.3, 0.1], atol=0.04)

    def test_top_k_restricts_support(self):
        rng = np.random.default_rng(0)
        logits = np.array([5.0, 4.0, -1.0, -2.0])
        samples = {sample_token(logits, rng, top_k=2) for _ in range(100)}
        assert samples <= {0, 1}

    def test_top_p_restricts_support(self):
        rng = np.random.default_rng(0)
        logits = np.log(np.array([0.7, 0.2, 0.07, 0.03]))
        samples = {sample_token(logits, rng, top_p=0.65) for _ in range(100)}
        assert samples == {0}


class TestBatchedSampling:
    """(B, V) logits: one independent draw per row, consumed in row order."""

    def test_greedy_rows_are_per_row_argmax(self):
        rows = np.array([[1.0, 9.0, 3.0], [7.0, 0.0, 2.0]])
        out = sample_token(rows, greedy=True)
        assert out.dtype == np.int64
        assert list(out) == [1, 0]

    def test_single_row_batch_bit_identical_to_vector(self):
        rng = np.random.default_rng(11)
        logits = rng.normal(size=12)
        for kwargs in ({}, {"temperature": 1.7}, {"top_k": 4}, {"top_p": 0.8}):
            a = sample_token(logits, rng=np.random.default_rng(5), **kwargs)
            b = sample_token(logits[None, :], rng=np.random.default_rng(5), **kwargs)
            assert b.shape == (1,)
            assert int(b[0]) == a

    def test_batch_consumes_rng_in_row_order(self):
        rng = np.random.default_rng(11)
        rows = rng.normal(size=(4, 9))
        batched = sample_token(rows, rng=np.random.default_rng(3))
        sequential_rng = np.random.default_rng(3)
        sequential = [sample_token(rows[i], rng=sequential_rng) for i in range(4)]
        assert list(batched) == sequential

    def test_batch_frequencies_match_softmax(self):
        rng = np.random.default_rng(0)
        logits = np.tile(np.log(np.array([0.6, 0.3, 0.1])), (500, 1))
        counts = np.zeros(3)
        for _ in range(6):
            tokens = sample_token(logits, rng=rng)
            np.add.at(counts, tokens, 1)
        assert np.allclose(counts / 3000, [0.6, 0.3, 0.1], atol=0.04)
