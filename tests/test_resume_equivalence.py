"""Tier-1 smoke test: a killed, resumed run is bit-identical to an uninterrupted one.

A 60-step tiny-GPT run is interrupted at step 30 by an injected crash,
then resumed from the last snapshot; losses, learning rates, gradient
norms for steps 31-60 and the final parameters must match the reference
run *exactly* (``==`` on floats, not ``allclose``).  Exercised for both
plain SGD and AdamW + cosine schedule, since the two optimizers carry
different checkpointed state (velocity vs. moments + step count).
"""

import numpy as np
import pytest

from repro.core import TransformerConfig, TransformerLM
from repro.data.corpus import sample_batch
from repro.nn import SGD, AdamW, WarmupCosine
from repro.train import Trainer, latest_checkpoint
from repro.train.faults import SimulatedCrash, clear, crash_at

STEPS = 60
CRASH_AT = 30
CHECKPOINT_EVERY = 10


@pytest.fixture(autouse=True)
def _disarm_failpoints():
    yield
    clear()


def make_trainer(stream: np.ndarray, optimizer_kind: str) -> Trainer:
    config = TransformerConfig(vocab_size=8, max_seq_len=8, d_model=16,
                               num_heads=2, num_layers=1, d_ff=32)
    model = TransformerLM(config, rng=0)
    if optimizer_kind == "sgd":
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
        schedule = None
    else:
        optimizer = AdamW(model.parameters(), lr=3e-3, weight_decay=0.01)
        schedule = WarmupCosine(peak_lr=3e-3, warmup_steps=5, total_steps=STEPS)
    return Trainer(
        model, optimizer,
        batch_fn=lambda step, rng: sample_batch(stream, 4, 8, rng),
        schedule=schedule, clip_norm=1.0, rng=np.random.default_rng(7),
    )


def params_of(trainer: Trainer) -> dict[str, np.ndarray]:
    return trainer.model.state_dict()


@pytest.mark.parametrize("optimizer_kind", ["sgd", "adamw_cosine"])
def test_resume_is_bit_identical(optimizer_kind, tiny_stream, tmp_path):
    # Reference: the run that never dies.
    reference_trainer = make_trainer(tiny_stream, optimizer_kind)
    reference = reference_trainer.run(STEPS)

    # Same run, checkpointed every 10 steps, killed at step 30.
    crashing = make_trainer(tiny_stream, optimizer_kind)
    crashing.batch_fn = crash_at(crashing.batch_fn, CRASH_AT)
    with pytest.raises(SimulatedCrash):
        crashing.run(STEPS, checkpoint_every=CHECKPOINT_EVERY,
                     checkpoint_dir=tmp_path)
    assert latest_checkpoint(tmp_path).step == CRASH_AT

    # Resume in a *fresh* trainer (fresh model, optimizer, RNG), as a
    # restarted process would.
    resumed_trainer = make_trainer(tiny_stream, optimizer_kind)
    resumed = resumed_trainer.run(STEPS, checkpoint_every=CHECKPOINT_EVERY,
                                  checkpoint_dir=tmp_path,
                                  resume_from=tmp_path)

    # History: first 30 steps restored from the snapshot, rest recomputed.
    assert resumed.steps == reference.steps == list(range(STEPS))
    assert resumed.losses == reference.losses
    assert resumed.lrs == reference.lrs
    assert resumed.grad_norms == reference.grad_norms
    # Bit-identical, specifically, for the post-resume tail.
    assert resumed.losses[CRASH_AT:] == reference.losses[CRASH_AT:]
    assert resumed.final_loss == reference.final_loss

    # Final parameters match exactly.
    ref_params = params_of(reference_trainer)
    res_params = params_of(resumed_trainer)
    assert set(ref_params) == set(res_params)
    for name in ref_params:
        assert np.array_equal(ref_params[name], res_params[name]), name


def test_resume_past_end_returns_saved_history(tiny_stream, tmp_path):
    done = make_trainer(tiny_stream, "sgd")
    finished = done.run(20, checkpoint_every=10, checkpoint_dir=tmp_path)
    again = make_trainer(tiny_stream, "sgd")
    replayed = again.run(20, checkpoint_every=10, checkpoint_dir=tmp_path,
                         resume_from=tmp_path)
    assert replayed.losses == finished.losses
    assert replayed.steps == finished.steps
