"""Unit tests for the mini BIG-bench tasks and evaluation harness."""

import numpy as np
import pytest

from repro.benchsuite import (
    SUITE_ALPHABET,
    AdditionTask,
    ComparisonTask,
    CopyTask,
    Example,
    ModularArithmeticTask,
    ReverseTask,
    SortTask,
    SubtractionTask,
    SuccessorTask,
    TaskScore,
    default_suite,
    evaluate_task,
    few_shot_prompt,
    leaderboard,
    mixture_text,
    render_example,
)
from repro.data import CharTokenizer
from repro.lm.base import LanguageModel


class TestTasks:
    def test_addition_correct(self):
        rng = np.random.default_rng(0)
        for ex in AdditionTask(digits=2).generate(rng, 20):
            a, b = ex.input_text.split("+")
            assert int(ex.output_text) == int(a) + int(b)

    def test_subtraction_non_negative(self):
        rng = np.random.default_rng(0)
        for ex in SubtractionTask().generate(rng, 20):
            assert int(ex.output_text) >= 0

    def test_modular_in_range(self):
        rng = np.random.default_rng(0)
        task = ModularArithmeticTask(modulus=7)
        for ex in task.generate(rng, 20):
            assert 0 <= int(ex.output_text) < 7
            assert ex.input_text.endswith("%7")

    def test_copy_reverse_sort(self):
        rng = np.random.default_rng(0)
        copy_ex = CopyTask(5).generate_one(rng)
        assert copy_ex.input_text == copy_ex.output_text
        rev_ex = ReverseTask(5).generate_one(rng)
        assert rev_ex.output_text == rev_ex.input_text[::-1]
        sort_ex = SortTask(5).generate_one(rng)
        assert list(sort_ex.output_text) == sorted(sort_ex.input_text)

    def test_comparison(self):
        rng = np.random.default_rng(0)
        for ex in ComparisonTask().generate(rng, 20):
            a, rest = ex.input_text.split(">")
            b = rest.rstrip("?")
            assert int(ex.output_text) == max(int(a), int(b))

    def test_successor_wraps(self):
        task = SuccessorTask(alphabet="abc")
        rng = np.random.default_rng(0)
        seen = {(e.input_text, e.output_text) for e in task.generate(rng, 50)}
        assert ("c", "a") in seen

    def test_grading_exact_match(self):
        ex = Example("1+1", "2")
        task = AdditionTask()
        assert task.grade(ex, " 2 ")
        assert not task.grade(ex, "3")

    def test_validation(self):
        with pytest.raises(ValueError):
            AdditionTask(digits=0)
        with pytest.raises(ValueError):
            ModularArithmeticTask(modulus=1)

    def test_all_tasks_fit_suite_alphabet(self):
        rng = np.random.default_rng(0)
        alphabet = set(SUITE_ALPHABET)
        for task in default_suite():
            for ex in task.generate(rng, 30):
                assert set(ex.input_text + ex.output_text) <= alphabet, task.name


class TestPromptFormat:
    def test_render_example(self):
        assert render_example(Example("1+1", "2")) == "1+1=2"

    def test_few_shot_prompt_ends_at_cue(self):
        shots = [Example("1+1", "2"), Example("2+2", "4")]
        prompt = few_shot_prompt(shots, Example("3+3", "6"))
        assert prompt == "1+1=2;2+2=4;3+3="

    def test_mixture_text_lines_are_episodes(self):
        rng = np.random.default_rng(0)
        text = mixture_text(default_suite(), rng, examples_per_task=2, shots=2)
        lines = [l for l in text.splitlines() if l]
        assert len(lines) == 2 * len(default_suite())
        for line in lines:
            assert line.count("=") == 3  # 2 shots + 1 query, all completed


class _OracleLM(LanguageModel):
    """Perfect 'model': answers few-shot addition prompts via parsing.

    Used to validate the harness mechanics independently of training.
    """

    def __init__(self, tokenizer):
        self.tok = tokenizer
        self.vocab_size = tokenizer.vocab_size

    def next_token_logprobs(self, context):
        text = self.tok.decode([int(i) for i in context])
        query = text.rsplit(";", 1)[-1]
        if query.endswith("=") and "+" in query:
            a, b = query[:-1].split("+")
            answer = str(int(a) + int(b))
            target = answer[0]
        elif "=" in query:
            expr, partial = query.rsplit("=", 1)
            a, b = expr.split("+")
            answer = str(int(a) + int(b))
            target = answer[len(partial)] if len(partial) < len(answer) else ";"
        else:
            target = ";"
        logprobs = np.full(self.vocab_size, -1e9)
        logprobs[self.tok.vocab.token_to_id(target)] = 0.0
        return logprobs


class TestHarness:
    def test_oracle_scores_perfectly(self):
        tok = CharTokenizer(SUITE_ALPHABET)
        oracle = _OracleLM(tok)
        score = evaluate_task(oracle, tok, AdditionTask(digits=1),
                              np.random.default_rng(0), num_queries=10, shots=2)
        assert score.accuracy == 1.0

    def test_random_model_scores_poorly(self):
        tok = CharTokenizer(SUITE_ALPHABET)

        class _Random(LanguageModel):
            vocab_size = tok.vocab_size

            def next_token_logprobs(self, context):
                return np.log(np.full(tok.vocab_size, 1.0 / tok.vocab_size))

        score = evaluate_task(_Random(), tok, AdditionTask(digits=1),
                              np.random.default_rng(0), num_queries=10,
                              shots=1)
        assert score.accuracy <= 0.3

    def test_task_score_accuracy(self):
        assert TaskScore("t", 3, 4, 8).accuracy == 0.5
        assert TaskScore("t", 3, 0, 0).accuracy == 0.0

    def test_leaderboard_sorted(self):
        scores = [TaskScore("low", 3, 1, 10), TaskScore("high", 3, 9, 10)]
        table = leaderboard(scores)
        assert table.index("high") < table.index("low")
        assert "90.0%" in table
